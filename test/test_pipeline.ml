(* Tests for the end-to-end pipeline, the shared evaluation harness,
   the tool interface, and CSV test-case conversion. *)

open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Recorder = Cftcg_coverage.Recorder
module Tools = Cftcg_baselines.Tools
module Simcotest = Cftcg_baselines.Simcotest
module Testcase = Cftcg_testcase.Testcase

let test_generate_produces_consistent_artifacts () =
  let gen = Cftcg.Pipeline.generate (Fixtures.arith_model ()) in
  Alcotest.(check int) "layout matches inports" 3
    (Array.length gen.Cftcg.Pipeline.layout.Layout.fields);
  Alcotest.(check bool) "C code nonempty" true (String.length gen.Cftcg.Pipeline.fuzz_code_c > 100);
  Alcotest.(check bool) "driver nonempty" true
    (String.length gen.Cftcg.Pipeline.fuzz_driver_c > 100)

let test_campaign_end_to_end () =
  let campaign =
    Cftcg.Pipeline.run_campaign
      ~config:{ Fuzzer.default_config with Fuzzer.seed = 5L }
      (Fixtures.arith_model ()) (Fuzzer.Exec_budget 2000)
  in
  Alcotest.(check bool) "some test cases" true
    (List.length campaign.Cftcg.Pipeline.fuzz.Fuzzer.test_suite > 0);
  Alcotest.(check bool) "coverage positive" true
    (campaign.Cftcg.Pipeline.coverage.Recorder.decision_pct > 50.0)

let test_replay_empty_suite_is_zero () =
  let prog = Codegen.lower (Fixtures.arith_model ()) in
  let r = Cftcg.Evaluate.replay prog [] in
  Alcotest.(check (float 0.0)) "zero decision" 0.0 r.Recorder.decision_pct

let test_replay_is_cumulative () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let layout = Layout.of_program prog in
  let mk a b c =
    let data = Bytes.create layout.Layout.tuple_len in
    Layout.set_field layout data ~tuple:0 ~field:0 (Value.of_bool a);
    Layout.set_field layout data ~tuple:0 ~field:1 (Value.of_bool b);
    Layout.set_field layout data ~tuple:0 ~field:2 (Value.of_bool c);
    data
  in
  let one = Cftcg.Evaluate.replay prog [ mk true true true ] in
  let both = Cftcg.Evaluate.replay prog [ mk true true true; mk false false false ] in
  Alcotest.(check bool) "more cases, more coverage" true
    (both.Recorder.decision_pct > one.Recorder.decision_pct)

let test_decision_series_monotone () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let layout = Layout.of_program prog in
  let rng = Cftcg_util.Rng.create 9L in
  let timed =
    List.init 10 (fun i -> (Layout.random_tuple_bytes layout rng, float_of_int i *. 0.1))
  in
  let series = Cftcg.Evaluate.decision_series prog timed in
  Alcotest.(check int) "one point per case" 10 (List.length series);
  let rec check_monotone last = function
    | [] -> ()
    | (t, cov) :: rest ->
      Alcotest.(check bool) "time sorted" true (t >= fst last);
      Alcotest.(check bool) "coverage non-decreasing" true (cov >= snd last);
      check_monotone (t, cov) rest
  in
  check_monotone (-1.0, 0.0) series

let test_all_tools_produce_scoreable_suites () =
  let m = Fixtures.arith_model () in
  List.iter
    (fun (tool : Tools.t) ->
      let outcome, report = Cftcg.Pipeline.score_tool tool m ~seed:3L ~time_budget:0.3 in
      Alcotest.(check string) "name matches" tool.Tools.name outcome.Tools.tool_name;
      Alcotest.(check bool)
        (Printf.sprintf "%s achieves coverage (%.0f%%)" tool.Tools.name
           report.Recorder.decision_pct)
        true
        (report.Recorder.decision_pct > 0.0))
    Tools.all

let test_fuzz_only_misses_condition_coverage () =
  (* the Figure 8 effect, as a regression test: on the logic-heavy
     fixture the branchless build cannot see boolean conditions *)
  let m = Fixtures.logic_model () in
  let _, cftcg_report = Cftcg.Pipeline.score_tool Tools.cftcg m ~seed:1L ~time_budget:0.4 in
  let _, fo_report = Cftcg.Pipeline.score_tool Tools.fuzz_only m ~seed:1L ~time_budget:0.4 in
  Alcotest.(check bool)
    (Printf.sprintf "CFTCG MCDC %.0f%% >= FuzzOnly %.0f%%" cftcg_report.Recorder.mcdc_pct
       fo_report.Recorder.mcdc_pct)
    true
    (cftcg_report.Recorder.mcdc_pct >= fo_report.Recorder.mcdc_pct)

let test_simcotest_runs_on_interpreter () =
  let m = Fixtures.chart_model () in
  let r = Simcotest.run ~config:{ Simcotest.default_config with Simcotest.seed = 2L } m ~time_budget:0.3 in
  Alcotest.(check bool) "simulated candidates" true (r.Simcotest.executions > 0);
  Alcotest.(check bool) "iterations counted" true
    (r.Simcotest.iterations >= r.Simcotest.executions);
  (* each test case has horizon tuples *)
  let layout = Layout.of_inports (Graph.inports m) in
  List.iter
    (fun (tc : Simcotest.test_case) ->
      Alcotest.(check int) "horizon tuples" Simcotest.default_config.Simcotest.horizon
        (Layout.n_tuples layout tc.Simcotest.data))
    r.Simcotest.suite

let test_tools_by_name () =
  Alcotest.(check bool) "finds cftcg" true (Tools.by_name "cftcg" <> None);
  Alcotest.(check bool) "finds SLDV" true (Tools.by_name "SLDV" <> None);
  Alcotest.(check bool) "unknown is none" true (Tools.by_name "zzz" = None)

(* --- CSV conversion --- *)

let test_csv_roundtrip () =
  let layout =
    Layout.of_inports [| ("a", Dtype.Int8); ("b", Dtype.Float64); ("c", Dtype.Bool) |]
  in
  let rng = Cftcg_util.Rng.create 12L in
  for _ = 1 to 20 do
    let tuples = 1 + Cftcg_util.Rng.int rng 6 in
    let data =
      Bytes.concat Bytes.empty (List.init tuples (fun _ -> Layout.random_tuple_bytes layout rng))
    in
    let csv = Testcase.to_csv layout data in
    let back = Testcase.of_csv layout csv in
    Alcotest.(check bytes) "roundtrip" data back
  done

let test_csv_header () =
  let layout = Layout.of_inports [| ("Enable", Dtype.Int8); ("Power", Dtype.Int32) |] in
  let csv = Testcase.to_csv layout (Bytes.make 5 '\000') in
  match String.split_on_char '\n' csv with
  | header :: _ -> Alcotest.(check string) "header" "step,Enable,Power" header
  | [] -> Alcotest.fail "empty csv"

let test_csv_rejects_garbage () =
  let layout = Layout.of_inports [| ("a", Dtype.Int8) |] in
  List.iter
    (fun s ->
      match Testcase.of_csv layout s with
      | exception Testcase.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted " ^ s))
    [ ""; "wrong,header\n0,1"; "step,a\n0"; "step,a\n0,xyz"; "step,a\n0,1,2" ]

let test_csv_suite_files () =
  let layout = Layout.of_inports [| ("u", Dtype.Int16) |] in
  let rng = Cftcg_util.Rng.create 13L in
  let suite = List.init 3 (fun _ -> Layout.random_tuple_bytes layout rng) in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_test_suite" in
  let paths = Testcase.save_suite layout ~dir ~prefix:"t" suite in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove paths)
    (fun () ->
      Alcotest.(check int) "three files" 3 (List.length paths);
      let loaded = Testcase.load_suite layout paths in
      Alcotest.(check (list bytes)) "suite roundtrip" suite loaded)

let suites =
  [ ( "core.pipeline",
      [ Alcotest.test_case "generate artifacts" `Quick test_generate_produces_consistent_artifacts;
        Alcotest.test_case "campaign end to end" `Quick test_campaign_end_to_end;
        Alcotest.test_case "replay empty" `Quick test_replay_empty_suite_is_zero;
        Alcotest.test_case "replay cumulative" `Quick test_replay_is_cumulative;
        Alcotest.test_case "decision series" `Quick test_decision_series_monotone ] );
    ( "baselines.tools",
      [ Alcotest.test_case "all tools scoreable" `Slow test_all_tools_produce_scoreable_suites;
        Alcotest.test_case "fuzz-only misses MCDC" `Slow test_fuzz_only_misses_condition_coverage;
        Alcotest.test_case "simcotest on interpreter" `Quick test_simcotest_runs_on_interpreter;
        Alcotest.test_case "by_name" `Quick test_tools_by_name ] );
    ( "testcase.csv",
      [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
        Alcotest.test_case "header" `Quick test_csv_header;
        Alcotest.test_case "rejects garbage" `Quick test_csv_rejects_garbage;
        Alcotest.test_case "suite files" `Quick test_csv_suite_files ] ) ]
