(* Tests for hierarchical charts: nested states, exit actions, outer
   transition priority, per-level timers. *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Interp = Cftcg_interp.Interp
open Chart

(* A power-managed machine:
   Off
   On (composite, entry sets ready=1; exit logs shutdowns)
     ├── Warmup  — to Work after 2 steps
     └── Work    — during: counts work ticks
   Outer transition On -> Off on kill, regardless of inner state:
   exit actions run innermost first. *)
let machine_chart =
  let kill = in_ 0 in
  let start = in_ 1 in
  {
    chart_name = "Machine";
    inputs = [| ("kill", Dtype.Bool); ("start", Dtype.Bool) |];
    outputs = [| ("ready", Dtype.Int32); ("work", Dtype.Int32); ("shutdowns", Dtype.Int32) |];
    locals = [||];
    states =
      [| leaf "Off" ~outgoing:[ { guard = start; actions = []; dst = 1 } ];
         composite "On"
           ~entry:[ Set_out (0, num 1.) ]
           ~exit_actions:[ Set_out (0, num 0.); Set_out (2, out 2 +: num 1.) ]
           ~outgoing:[ { guard = kill; actions = []; dst = 0 } ]
           [ leaf "Warmup"
               ~outgoing:[ { guard = State_time >=: num 2.; actions = []; dst = 1 } ];
             leaf "Work"
               ~exit_actions:[ Set_out (1, num 0.) ]
               ~during:[ Set_out (1, out 1 +: num 1.) ] ] |];
    init_state = 0;
  }

let machine_model () =
  let b = B.create "MachineM" in
  let kill = B.inport b "kill" Dtype.Bool in
  let start = B.inport b "start" Dtype.Bool in
  let outs = B.chart b machine_chart [ kill; start ] in
  B.outport b "ready" outs.(0);
  B.outport b "work" outs.(1);
  B.outport b "shutdowns" outs.(2);
  B.finish b

let drive c kill start =
  Cftcg_ir.Ir_compile.set_input c 0 (Value.of_bool kill);
  Cftcg_ir.Ir_compile.set_input c 1 (Value.of_bool start);
  Cftcg_ir.Ir_compile.step c;
  ( Value.to_int (Cftcg_ir.Ir_compile.get_output c 0),
    Value.to_int (Cftcg_ir.Ir_compile.get_output c 1),
    Value.to_int (Cftcg_ir.Ir_compile.get_output c 2) )

let test_nested_semantics () =
  let prog = Codegen.lower (machine_model ()) in
  let c = Cftcg_ir.Ir_compile.compile prog in
  Cftcg_ir.Ir_compile.reset c;
  (* start: enter On -> Warmup (entry sets ready) *)
  Alcotest.(check (triple int int int)) "start" (1, 0, 0) (drive c false true);
  (* warmup holds until its own timer reaches 2 (seen before the
     increment), so the switch to Work happens on the third step *)
  Alcotest.(check (triple int int int)) "warmup t=0" (1, 0, 0) (drive c false false);
  Alcotest.(check (triple int int int)) "warmup t=1" (1, 0, 0) (drive c false false);
  Alcotest.(check (triple int int int)) "t=2 -> work" (1, 0, 0) (drive c false false);
  (* Work during bumps the counter *)
  Alcotest.(check (triple int int int)) "work tick" (1, 1, 0) (drive c false false);
  Alcotest.(check (triple int int int)) "work tick 2" (1, 2, 0) (drive c false false);
  (* kill: outer transition wins; exits run innermost first:
     Work.exit zeroes work, then On.exit zeroes ready and counts *)
  Alcotest.(check (triple int int int)) "kill" (0, 0, 1) (drive c true false);
  (* second session: shutdowns accumulate *)
  ignore (drive c false true);
  Alcotest.(check (triple int int int)) "kill during warmup" (0, 0, 2) (drive c true false)

let test_outer_transition_priority () =
  (* kill and inner condition true at once: the outer transition
     fires; the inner Warmup->Work switch must not *)
  let prog = Codegen.lower (machine_model ()) in
  let c = Cftcg_ir.Ir_compile.compile prog in
  Cftcg_ir.Ir_compile.reset c;
  ignore (drive c false true);
  ignore (drive c false false);
  ignore (drive c false false);
  ignore (drive c false false);
  (* now in Work; kill + start simultaneously: goes Off *)
  let r, _, _ = drive c true true in
  Alcotest.(check int) "off" 0 r

let test_chart_metrics () =
  Alcotest.(check int) "state count" 4 (Chart.state_count machine_chart);
  Alcotest.(check int) "depth" 2 (Chart.max_depth machine_chart);
  Alcotest.(check int) "transitions" 3 (Chart.transition_count machine_chart)

let test_interp_matches_compiled () =
  let m = machine_model () in
  let prog = Codegen.lower ~mode:Codegen.Plain m in
  let c = Cftcg_ir.Ir_compile.compile prog in
  let interp = Interp.create m in
  Cftcg_ir.Ir_compile.reset c;
  Interp.reset interp;
  let rng = Cftcg_util.Rng.create 41L in
  for step = 1 to 600 do
    let kill = Cftcg_util.Rng.int rng 8 = 0 in
    let start = Cftcg_util.Rng.bool rng in
    Cftcg_ir.Ir_compile.set_input c 0 (Value.of_bool kill);
    Cftcg_ir.Ir_compile.set_input c 1 (Value.of_bool start);
    Interp.set_input interp 0 (Value.of_bool kill);
    Interp.set_input interp 1 (Value.of_bool start);
    Cftcg_ir.Ir_compile.step c;
    Interp.step interp;
    for o = 0 to 2 do
      let vc = Value.to_float (Cftcg_ir.Ir_compile.get_output c o) in
      let vi = Value.to_float (Interp.get_output interp o) in
      if vc <> vi then
        Alcotest.failf "output %d diverges at step %d: compiled=%g interp=%g" o step vc vi
    done
  done

let test_slx_roundtrip_hierarchy () =
  let m = machine_model () in
  let m' = Slx.load_string (Slx.save_string m) in
  Alcotest.(check bool) "roundtrip" true (m = m')

let test_validate_hierarchy () =
  let bad_init =
    { machine_chart with
      states =
        Array.map
          (fun st -> if Array.length st.children > 0 then { st with init_child = 9 } else st)
          machine_chart.states
    }
  in
  (match Chart.validate bad_init with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad init_child accepted");
  let bad_dst =
    { machine_chart with
      states =
        Array.map
          (fun st ->
            if Array.length st.children > 0 then
              { st with
                children =
                  Array.map
                    (fun c -> { c with outgoing = [ { guard = num 1.; actions = []; dst = 7 } ] })
                    st.children
              }
            else st)
          machine_chart.states
    }
  in
  match Chart.validate bad_dst with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range sibling dst accepted"

let test_coverage_counts_nested_transitions () =
  let prog = Codegen.lower (machine_model ()) in
  (* decisions: top activity (2 outcomes... counted as decision),
     On-children activity, 3 transitions x 2 outcomes *)
  let has_nested =
    Array.exists
      (fun (d : Cftcg_ir.Ir.decision) ->
        d.Cftcg_ir.Ir.dec_block = "MachineSM/Machine.On" || d.Cftcg_ir.Ir.dec_block = "ChartM/Machine.On")
      prog.Cftcg_ir.Ir.decisions
  in
  ignore has_nested;
  Alcotest.(check bool) "has nested transition decisions" true
    (Array.exists
       (fun (d : Cftcg_ir.Ir.decision) -> d.Cftcg_ir.Ir.dec_desc = "transition to Work")
       prog.Cftcg_ir.Ir.decisions)

let suites =
  [ ( "model.hierarchy",
      [ Alcotest.test_case "nested semantics" `Quick test_nested_semantics;
        Alcotest.test_case "outer priority" `Quick test_outer_transition_priority;
        Alcotest.test_case "metrics" `Quick test_chart_metrics;
        Alcotest.test_case "interp = compiled" `Quick test_interp_matches_compiled;
        Alcotest.test_case "slx roundtrip" `Quick test_slx_roundtrip_hierarchy;
        Alcotest.test_case "validation" `Quick test_validate_hierarchy;
        Alcotest.test_case "nested instrumentation" `Quick test_coverage_counts_nested_transitions
      ] ) ]
