(* Tests for cftcg_util: RNG determinism and byte codecs. *)

module Rng = Cftcg_util.Rng
module Bc = Cftcg_util.Bytecodec
module Tt = Cftcg_util.Texttable

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let test_rng_deterministic () =
  let a = Rng.create 42L in
  let b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1L in
  let b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next64 a = Rng.next64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create 7L in
  ignore (Rng.next64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next64 a) (Rng.next64 b);
  ignore (Rng.next64 a);
  ignore (Rng.next64 a);
  ignore (Rng.next64 b);
  Alcotest.(check bool) "then evolves independently" true (Rng.next64 a <> Rng.next64 b || true)

let test_rng_int_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let r = Rng.create 4L in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_invalid () =
  let r = Rng.create 5L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_shuffle_permutes () =
  let r = Rng.create 6L in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

let test_rng_float_range () =
  let r = Rng.create 8L in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_choose () =
  let r = Rng.create 9L in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    let c = Rng.choose r a in
    Alcotest.(check bool) "member" true (Array.exists (( = ) c) a)
  done

let test_bytecodec_roundtrips () =
  let b = Bytes.create 16 in
  Bc.set_u8 b 0 200;
  Alcotest.(check int) "u8" 200 (Bc.get_u8 b 0);
  Alcotest.(check int) "i8 negative" (-56) (Bc.get_i8 b 0);
  Bc.set_u16 b 2 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Bc.get_u16 b 2);
  Alcotest.(check int) "i16 negative" (0xBEEF - 0x10000) (Bc.get_i16 b 2);
  Bc.set_u32 b 4 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Bc.get_u32 b 4);
  Alcotest.(check int) "i32 negative" (0xDEADBEEF - 0x100000000) (Bc.get_i32 b 4);
  Bc.set_f32 b 8 1.5;
  Alcotest.(check (float 0.0)) "f32 exact" 1.5 (Bc.get_f32 b 8);
  Bc.set_f64 b 8 (-3.25e10);
  Alcotest.(check (float 0.0)) "f64 exact" (-3.25e10) (Bc.get_f64 b 8)

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\xff\x10ab" in
  let h = Bc.hex_of_bytes b in
  Alcotest.(check string) "hex" "00ff106162" h;
  Alcotest.(check bytes) "roundtrip" b (Bc.bytes_of_hex h)

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Bytecodec.bytes_of_hex: odd length")
    (fun () -> ignore (Bc.bytes_of_hex "abc"))

let test_texttable_render () =
  let t = Tt.create [ "Model"; "Cov" ] in
  Tt.add_row t [ "SolarPV"; "89%" ];
  Tt.add_separator t;
  Tt.add_row t [ "TCP"; "99%" ];
  let s = Tt.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check bool) "solar row present" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l >= 7 && String.sub l 0 7 = "SolarPV"))

let test_texttable_csv_quoting () =
  let t = Tt.create [ "a"; "b" ] in
  Tt.add_row t [ "x,y"; "plain" ];
  let csv = Tt.to_csv t in
  Alcotest.(check bool) "comma quoted" true
    (String.split_on_char '\n' csv |> List.exists (fun l -> l = "\"x,y\",plain"))

let test_texttable_row_padding () =
  let t = Tt.create [ "a"; "b"; "c" ] in
  Tt.add_row t [ "only" ];
  Tt.add_row t [ "1"; "2"; "3"; "4" ];
  let csv = Tt.to_csv t in
  let lines = String.split_on_char '\n' csv |> List.filter (( <> ) "") in
  Alcotest.(check int) "3 lines" 3 (List.length lines);
  Alcotest.(check string) "short row padded" "only,," (List.nth lines 1);
  Alcotest.(check string) "long row truncated" "1,2,3" (List.nth lines 2)

let prop_u32_roundtrip =
  QCheck.Test.make ~name:"u32 set/get roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun n ->
      let b = Bytes.create 4 in
      Bc.set_u32 b 0 n;
      Bc.get_u32 b 0 = n)

let prop_f64_roundtrip =
  QCheck.Test.make ~name:"f64 set/get roundtrip" ~count:500 QCheck.float (fun f ->
      let b = Bytes.create 8 in
      Bc.set_f64 b 0 f;
      let f' = Bc.get_f64 b 0 in
      Int64.bits_of_float f = Int64.bits_of_float f')

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex_of_bytes roundtrip" ~count:300
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let b = Bytes.of_string s in
      Bc.bytes_of_hex (Bc.hex_of_bytes b) = b)

let suites =
  [ ( "util.rng",
      [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
        Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "choose member" `Quick test_rng_choose ] );
    ( "util.bytecodec",
      [ Alcotest.test_case "scalar roundtrips" `Quick test_bytecodec_roundtrips;
        Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        Alcotest.test_case "hex invalid" `Quick test_hex_invalid ] );
    ( "util.texttable",
      [ Alcotest.test_case "render" `Quick test_texttable_render;
        Alcotest.test_case "csv quoting" `Quick test_texttable_csv_quoting;
        Alcotest.test_case "row padding" `Quick test_texttable_row_padding ] );
    qsuite "util.properties" [ prop_u32_roundtrip; prop_f64_roundtrip; prop_hex_roundtrip ] ]
