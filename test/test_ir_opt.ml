(* Tests for the IR optimizer: behaviour preservation (differential
   against the unoptimized program, including all coverage events)
   and effectiveness (statements actually removed). *)

open Cftcg_model
open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen
module Recorder = Cftcg_coverage.Recorder

let rng_input rng (var : Ir.var) =
  match var.Ir.vty with
  | Dtype.Bool -> Value.of_bool (Cftcg_util.Rng.bool rng)
  | ty when Dtype.is_integer ty -> Value.of_int ty (Cftcg_util.Rng.int_in rng (-500) 500)
  | ty -> Value.of_float ty (Cftcg_util.Rng.float rng 60.0 -. 30.0)

(* Run both programs over the same random stream; compare outputs and
   the full trace of probe/cond/decision events. *)
let differential name prog =
  let opt = Ir_opt.optimize prog in
  (match Ir.validate opt with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: optimized program invalid: %s" name msg);
  let trace_a = ref [] in
  let trace_b = ref [] in
  let mk_hooks trace =
    {
      Hooks.on_probe = Some (fun id -> trace := `P id :: !trace);
      on_cond = Some (fun d i b -> trace := `C (d, i, b) :: !trace);
      on_decision = Some (fun d o -> trace := `D (d, o) :: !trace);
      on_branch = None;
    }
  in
  let a = Ir_compile.compile ~hooks:(mk_hooks trace_a) prog in
  let b = Ir_compile.compile ~hooks:(mk_hooks trace_b) opt in
  Ir_compile.reset a;
  Ir_compile.reset b;
  let rng = Cftcg_util.Rng.create 31L in
  for step = 1 to 300 do
    Array.iteri
      (fun i var ->
        let v = rng_input rng var in
        Ir_compile.set_input a i v;
        Ir_compile.set_input b i v)
      prog.Ir.inputs;
    Ir_compile.step a;
    Ir_compile.step b;
    Array.iteri
      (fun i _ ->
        let va = Value.to_float (Ir_compile.get_output a i) in
        let vb = Value.to_float (Ir_compile.get_output b i) in
        if va <> vb && not (Float.is_nan va && Float.is_nan vb) then
          Alcotest.failf "%s: output %d diverges at step %d: %.17g vs %.17g" name i step va vb)
      prog.Ir.outputs
  done;
  if !trace_a <> !trace_b then
    Alcotest.failf "%s: coverage event traces diverge (%d vs %d events)" name
      (List.length !trace_a) (List.length !trace_b)

let test_preserves_fixtures () =
  List.iter
    (fun (name, mk) -> differential name (Codegen.lower (mk ())))
    [ ("arith", Fixtures.arith_model); ("feedback", Fixtures.feedback_model);
      ("chart", Fixtures.chart_model); ("logic", Fixtures.logic_model);
      ("enabled", Fixtures.enabled_model); ("triggered", Fixtures.triggered_model);
      ("kitchen sink", Fixtures.kitchen_sink_model) ]

let test_preserves_bench_models () =
  List.iter
    (fun (e : Cftcg_bench_models.Bench_models.entry) ->
      differential e.Cftcg_bench_models.Bench_models.name
        (Codegen.lower (Lazy.force e.Cftcg_bench_models.Bench_models.model)))
    Cftcg_bench_models.Bench_models.all

let test_constant_folding_works () =
  (* (2 + 3) * u : the addition must fold away *)
  let b = Build.create "CF" in
  let u = Build.inport b "u" Dtype.Float64 in
  let k = Build.sum b [ Build.const_f b 2.0; Build.const_f b 3.0 ] in
  let y = Build.product b [ k; u ] in
  Build.outport b "y" y;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize prog in
  Alcotest.(check bool)
    (Printf.sprintf "fewer statements (%d -> %d)" (Ir.stmt_count prog) (Ir.stmt_count opt))
    true
    (Ir.stmt_count opt < Ir.stmt_count prog);
  let c = Ir_compile.compile opt in
  Ir_compile.reset c;
  Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 4.0);
  Ir_compile.step c;
  Alcotest.(check (float 0.0)) "value" 20.0 (Value.to_float (Ir_compile.get_output c 0))

let test_constant_branch_pruned () =
  (* switch with a constant-true control folds to the taken arm *)
  let b = Build.create "CB" in
  let u = Build.inport b "u" Dtype.Float64 in
  let y = Build.switch b u (Build.const_f b 1.0) (Build.neg b u) in
  Build.outport b "y" y;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize prog in
  let rec has_if = function
    | [] -> false
    | Ir.If _ :: _ -> true
    | _ :: rest -> has_if rest
  in
  Alcotest.(check bool) "no Select/If left for the switch" false (has_if opt.Ir.step)

let test_dead_store_removed () =
  (* a terminated signal chain is computed then never read *)
  let b = Build.create "DS" in
  let u = Build.inport b "u" Dtype.Float64 in
  let dead = Build.gain b 5.0 (Build.gain b 3.0 u) in
  Build.terminator b dead;
  Build.outport b "y" u;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize prog in
  Alcotest.(check bool)
    (Printf.sprintf "dead chain removed (%d -> %d)" (Ir.stmt_count prog) (Ir.stmt_count opt))
    true
    (Ir.stmt_count opt < Ir.stmt_count prog)

let test_copy_propagation () =
  (* conversions between equal types become copies and then fold *)
  let b = Build.create "CP" in
  let u = Build.inport b "u" Dtype.Float64 in
  let v = Build.convert b Dtype.Float64 u in
  let w = Build.convert b Dtype.Float64 v in
  Build.outport b "y" w;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize prog in
  Alcotest.(check bool) "copies collapse" true (Ir.stmt_count opt <= Ir.stmt_count prog);
  let c = Ir_compile.compile opt in
  Ir_compile.reset c;
  Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 7.5);
  Ir_compile.step c;
  Alcotest.(check (float 0.0)) "identity preserved" 7.5 (Value.to_float (Ir_compile.get_output c 0))

let test_optimizer_is_idempotent () =
  let prog = Codegen.lower (Fixtures.kitchen_sink_model ()) in
  let once = Ir_opt.optimize prog in
  let twice = Ir_opt.optimize once in
  Alcotest.(check int) "fixpoint" (Ir.stmt_count once) (Ir.stmt_count twice)

let test_optimizer_shrinks_bench_models () =
  List.iter
    (fun (e : Cftcg_bench_models.Bench_models.entry) ->
      let prog =
        Codegen.lower ~mode:Codegen.Plain (Lazy.force e.Cftcg_bench_models.Bench_models.model)
      in
      let opt = Ir_opt.optimize prog in
      Alcotest.(check bool)
        (Printf.sprintf "%s shrinks: %s" e.Cftcg_bench_models.Bench_models.name
           (Ir_opt.stats prog opt))
        true
        (Ir.stmt_count opt <= Ir.stmt_count prog))
    Cftcg_bench_models.Bench_models.all

let suites =
  [ ( "ir.opt",
      [ Alcotest.test_case "preserves fixtures" `Slow test_preserves_fixtures;
        Alcotest.test_case "preserves bench models" `Slow test_preserves_bench_models;
        Alcotest.test_case "constant folding" `Quick test_constant_folding_works;
        Alcotest.test_case "constant branch pruned" `Quick test_constant_branch_pruned;
        Alcotest.test_case "dead store removed" `Quick test_dead_store_removed;
        Alcotest.test_case "copy propagation" `Quick test_copy_propagation;
        Alcotest.test_case "idempotent" `Quick test_optimizer_is_idempotent;
        Alcotest.test_case "shrinks bench models" `Quick test_optimizer_shrinks_bench_models ] ) ]
