(* Tests for the IR optimizer: behaviour preservation (differential
   against the unoptimized program, including all coverage events)
   and effectiveness (statements actually removed). *)

open Cftcg_model
open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen
module Recorder = Cftcg_coverage.Recorder

let rng_input rng (var : Ir.var) =
  match var.Ir.vty with
  | Dtype.Bool -> Value.of_bool (Cftcg_util.Rng.bool rng)
  | ty when Dtype.is_integer ty -> Value.of_int ty (Cftcg_util.Rng.int_in rng (-500) 500)
  | ty -> Value.of_float ty (Cftcg_util.Rng.float rng 60.0 -. 30.0)

(* Run both programs over the same random stream; compare outputs and
   the full trace of probe/cond/decision events. *)
let differential name prog =
  let opt = Ir_opt.optimize prog in
  (match Ir.validate opt with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: optimized program invalid: %s" name msg);
  let trace_a = ref [] in
  let trace_b = ref [] in
  let mk_hooks trace =
    {
      Hooks.on_probe = Some (fun id -> trace := `P id :: !trace);
      on_cond = Some (fun d i b -> trace := `C (d, i, b) :: !trace);
      on_decision = Some (fun d o -> trace := `D (d, o) :: !trace);
      on_branch = None;
    }
  in
  let a = Ir_compile.compile ~hooks:(mk_hooks trace_a) prog in
  let b = Ir_compile.compile ~hooks:(mk_hooks trace_b) opt in
  Ir_compile.reset a;
  Ir_compile.reset b;
  let rng = Cftcg_util.Rng.create 31L in
  for step = 1 to 300 do
    Array.iteri
      (fun i var ->
        let v = rng_input rng var in
        Ir_compile.set_input a i v;
        Ir_compile.set_input b i v)
      prog.Ir.inputs;
    Ir_compile.step a;
    Ir_compile.step b;
    Array.iteri
      (fun i _ ->
        let va = Value.to_float (Ir_compile.get_output a i) in
        let vb = Value.to_float (Ir_compile.get_output b i) in
        if va <> vb && not (Float.is_nan va && Float.is_nan vb) then
          Alcotest.failf "%s: output %d diverges at step %d: %.17g vs %.17g" name i step va vb)
      prog.Ir.outputs
  done;
  if !trace_a <> !trace_b then
    Alcotest.failf "%s: coverage event traces diverge (%d vs %d events)" name
      (List.length !trace_a) (List.length !trace_b)

let test_preserves_fixtures () =
  List.iter
    (fun (name, mk) -> differential name (Codegen.lower (mk ())))
    [ ("arith", Fixtures.arith_model); ("feedback", Fixtures.feedback_model);
      ("chart", Fixtures.chart_model); ("logic", Fixtures.logic_model);
      ("enabled", Fixtures.enabled_model); ("triggered", Fixtures.triggered_model);
      ("kitchen sink", Fixtures.kitchen_sink_model) ]

let test_preserves_bench_models () =
  List.iter
    (fun (e : Cftcg_bench_models.Bench_models.entry) ->
      differential e.Cftcg_bench_models.Bench_models.name
        (Codegen.lower (Lazy.force e.Cftcg_bench_models.Bench_models.model)))
    Cftcg_bench_models.Bench_models.all

let test_constant_folding_works () =
  (* (2 + 3) * u : the addition must fold away *)
  let b = Build.create "CF" in
  let u = Build.inport b "u" Dtype.Float64 in
  let k = Build.sum b [ Build.const_f b 2.0; Build.const_f b 3.0 ] in
  let y = Build.product b [ k; u ] in
  Build.outport b "y" y;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize prog in
  Alcotest.(check bool)
    (Printf.sprintf "fewer statements (%d -> %d)" (Ir.stmt_count prog) (Ir.stmt_count opt))
    true
    (Ir.stmt_count opt < Ir.stmt_count prog);
  let c = Ir_compile.compile opt in
  Ir_compile.reset c;
  Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 4.0);
  Ir_compile.step c;
  Alcotest.(check (float 0.0)) "value" 20.0 (Value.to_float (Ir_compile.get_output c 0))

let test_constant_branch_pruned () =
  (* switch with a constant-true control folds to the taken arm *)
  let b = Build.create "CB" in
  let u = Build.inport b "u" Dtype.Float64 in
  let y = Build.switch b u (Build.const_f b 1.0) (Build.neg b u) in
  Build.outport b "y" y;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize prog in
  let rec has_if = function
    | [] -> false
    | Ir.If _ :: _ -> true
    | _ :: rest -> has_if rest
  in
  Alcotest.(check bool) "no Select/If left for the switch" false (has_if opt.Ir.step)

let test_dead_store_removed () =
  (* a terminated signal chain is computed then never read *)
  let b = Build.create "DS" in
  let u = Build.inport b "u" Dtype.Float64 in
  let dead = Build.gain b 5.0 (Build.gain b 3.0 u) in
  Build.terminator b dead;
  Build.outport b "y" u;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize prog in
  Alcotest.(check bool)
    (Printf.sprintf "dead chain removed (%d -> %d)" (Ir.stmt_count prog) (Ir.stmt_count opt))
    true
    (Ir.stmt_count opt < Ir.stmt_count prog)

let test_copy_propagation () =
  (* conversions between equal types become copies and then fold *)
  let b = Build.create "CP" in
  let u = Build.inport b "u" Dtype.Float64 in
  let v = Build.convert b Dtype.Float64 u in
  let w = Build.convert b Dtype.Float64 v in
  Build.outport b "y" w;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize prog in
  Alcotest.(check bool) "copies collapse" true (Ir.stmt_count opt <= Ir.stmt_count prog);
  let c = Ir_compile.compile opt in
  Ir_compile.reset c;
  Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 7.5);
  Ir_compile.step c;
  Alcotest.(check (float 0.0)) "identity preserved" 7.5 (Value.to_float (Ir_compile.get_output c 0))

let test_optimizer_is_idempotent () =
  let prog = Codegen.lower (Fixtures.kitchen_sink_model ()) in
  let once = Ir_opt.optimize prog in
  let twice = Ir_opt.optimize once in
  Alcotest.(check int) "fixpoint" (Ir.stmt_count once) (Ir.stmt_count twice)

let test_optimizer_shrinks_bench_models () =
  List.iter
    (fun (e : Cftcg_bench_models.Bench_models.entry) ->
      let prog =
        Codegen.lower ~mode:Codegen.Plain (Lazy.force e.Cftcg_bench_models.Bench_models.model)
      in
      let opt = Ir_opt.optimize prog in
      Alcotest.(check bool)
        (Printf.sprintf "%s shrinks: %s" e.Cftcg_bench_models.Bench_models.name
           (Ir_opt.stats prog opt))
        true
        (Ir.stmt_count opt <= Ir.stmt_count prog))
    Cftcg_bench_models.Bench_models.all

(* ------------------------------------------------------------------ *)
(* Bytecode optimizer (Ir_opt.optimize_bytecode)                       *)
(* ------------------------------------------------------------------ *)

module L = Ir_linearize

(* behavioural check shared by the rule tests: the optimized bytecode
   must produce the same outputs as the unoptimized bytecode *)
let same_outputs name prog ~steps =
  let vm_opt = Ir_vm.compile prog in
  let vm_raw = Ir_vm.compile ~optimize:false prog in
  Ir_vm.reset vm_opt;
  Ir_vm.reset vm_raw;
  let rng = Cftcg_util.Rng.create 77L in
  for step = 1 to steps do
    Array.iteri
      (fun i var ->
        let v = rng_input rng var in
        Ir_vm.set_input vm_opt i v;
        Ir_vm.set_input vm_raw i v)
      prog.Ir.inputs;
    Ir_vm.step vm_opt;
    Ir_vm.step vm_raw;
    Array.iteri
      (fun o _ ->
        let a = Value.to_float (Ir_vm.get_output vm_raw o) in
        let b = Value.to_float (Ir_vm.get_output vm_opt o) in
        if a <> b && not (Float.is_nan a && Float.is_nan b) then
          Alcotest.failf "%s: output %d diverges at step %d: %.17g vs %.17g" name o step a b)
      prog.Ir.outputs
  done

let test_bc_constant_folding () =
  (* (2 + 3) * u : the add of two pool registers must fold away *)
  let b = Build.create "BCF" in
  let u = Build.inport b "u" Dtype.Float64 in
  Build.outport b "y" (Build.product b [ Build.sum b [ Build.const_f b 2.0; Build.const_f b 3.0 ]; u ]);
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let lin = L.linearize prog in
  let opt = Ir_opt.optimize_bytecode lin in
  let h_raw = Ir_opt.opcode_histogram lin and h_opt = Ir_opt.opcode_histogram opt in
  Alcotest.(check bool) "an add disappears" true (h_opt.(L.op_add_f) < h_raw.(L.op_add_f));
  same_outputs "bc const fold" prog ~steps:50

let test_bc_copy_propagation () =
  (* same-type conversions lower to movs; copy propagation plus DCE
     must leave none of the chain *)
  let b = Build.create "BCP" in
  let u = Build.inport b "u" Dtype.Float64 in
  let v = Build.convert b Dtype.Float64 u in
  let w = Build.convert b Dtype.Float64 v in
  Build.outport b "y" w;
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let lin = L.linearize prog in
  let opt = Ir_opt.optimize_bytecode lin in
  Alcotest.(check bool)
    (Printf.sprintf "insts shrink (%d -> %d)" (Ir_opt.static_count lin) (Ir_opt.static_count opt))
    true
    (Ir_opt.static_count opt < Ir_opt.static_count lin);
  same_outputs "bc copy prop" prog ~steps:50

let test_bc_dce_respects_roots () =
  (* a terminated chain dies, but state and output writes survive *)
  let b = Build.create "BDCE" in
  let u = Build.inport b "u" Dtype.Float64 in
  Build.terminator b (Build.gain b 5.0 (Build.gain b 3.0 u));
  let d = Build.unit_delay b ~init:0.0 u in
  Build.outport b "y" (Build.sum b [ d; u ]);
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let lin = L.linearize prog in
  let opt = Ir_opt.optimize_bytecode lin in
  Alcotest.(check bool)
    (Printf.sprintf "dead chain removed (%d -> %d)" (Ir_opt.static_count lin)
       (Ir_opt.static_count opt))
    true
    (Ir_opt.static_count opt < Ir_opt.static_count lin);
  (* the delayed feedback still works: outputs must track history *)
  same_outputs "bc dce" prog ~steps:80

(* Parse the disassembly into (index, opname, target option) rows so
   structural properties can be asserted without re-exposing the
   decoder. Lines look like "   12: jmp        -> 29". *)
let disasm_insts lin =
  Ir_opt.disassemble lin |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         match String.index_opt line ':' with
         | Some colon when colon > 0 && String.trim (String.sub line 0 colon) <> "" -> (
           match int_of_string_opt (String.trim (String.sub line 0 colon)) with
           | None -> None (* "init:" / "step:" headers *)
           | Some ix ->
             let rest = String.sub line (colon + 1) (String.length line - colon - 1) in
             let name = List.hd (String.split_on_char ' ' (String.trim rest)) in
             let target =
               match String.index_opt rest '>' with
               | Some gt ->
                 int_of_string_opt
                   (String.trim (String.sub rest (gt + 1) (String.length rest - gt - 1)))
               | None -> None
             in
             Some (ix, name, target))
         | _ -> None)

let test_bc_jump_threading () =
  (* nested switches create jmp-to-jmp chains at the joins; after
     threading, no live jump may land on a jmp *)
  let b = Build.create "BJT" in
  let u = Build.inport b "u" Dtype.Float64 in
  let c1 = Build.compare_const b Graph.R_gt 0.0 u in
  let c2 = Build.compare_const b Graph.R_gt 10.0 u in
  let inner = Build.switch b c2 (Build.const_f b 1.0) (Build.const_f b 2.0) in
  Build.outport b "y" (Build.switch b c1 inner (Build.const_f b 3.0));
  let prog = Codegen.lower ~mode:Codegen.Full (Build.finish b) in
  let lin = L.linearize prog in
  let opt = Ir_opt.optimize_bytecode lin in
  let insts = disasm_insts opt in
  let name_at ix =
    match List.find_opt (fun (i, _, _) -> i = ix) insts with
    | Some (_, n, _) -> n
    | None -> "?"
  in
  List.iter
    (fun (ix, _, target) ->
      match target with
      | Some t ->
        if name_at t = "jmp" then
          Alcotest.failf "instruction %d still jumps to a jmp at %d" ix t
      | None -> ())
    insts;
  same_outputs "bc jump threading" prog ~steps:50

(* every fused opcode appears when its source pattern is present, and
   behaviour is unchanged *)
let test_bc_fused_compare_jumps () =
  List.iter
    (fun (rel, fused, label) ->
      let b = Build.create ("BFC" ^ label) in
      let u = Build.inport b "u" Dtype.Float64 in
      let v = Build.inport b "v" Dtype.Float64 in
      let c = Build.relational b rel u v in
      Build.outport b "y" (Build.switch b c (Build.sum b [ u; v ]) (Build.neg b u));
      let prog = Codegen.lower ~mode:Codegen.Full (Build.finish b) in
      let opt = Ir_opt.optimize_bytecode (L.linearize prog) in
      let h = Ir_opt.opcode_histogram opt in
      Alcotest.(check bool) (label ^ " fused compare emitted") true (h.(fused) > 0);
      same_outputs ("fused " ^ label) prog ~steps:60)
    [ (Graph.R_lt, L.op_jlt, "jlt"); (Graph.R_le, L.op_jle, "jle"); (Graph.R_eq, L.op_jeq, "jeq");
      (Graph.R_ne, L.op_jne, "jne"); (Graph.R_gt, L.op_jgt, "jgt"); (Graph.R_ge, L.op_jge, "jge") ]

(* a negated chart guard is the one construct that lowers to an [If]
   with a top-level NOT — i.e. a [not t; jz t] pair — so it is where
   the jnz fusion fires *)
let test_bc_fused_jnz () =
  let open Chart in
  let u = in_ 0 in
  let state name out dst =
    { state_name = name; exit_actions = []; children = [||]; init_child = 0;
      parallel = false; entry = []; during = [ Set_out (0, num out) ];
      outgoing = [ { guard = not_ (Bin (C_gt, u, num 0.)); actions = []; dst } ] }
  in
  let sm =
    { chart_name = "NotSM";
      inputs = [| ("u", Dtype.Float64) |];
      outputs = [| ("y", Dtype.Float64) |];
      locals = [||];
      states = [| state "A" 1. 1; state "B" 2. 0 |];
      init_state = 0 }
  in
  let b = Build.create "BJNZ" in
  let us = Build.inport b "u" Dtype.Float64 in
  let outs = Build.chart b sm [ us ] in
  Build.outport b "y" outs.(0);
  let prog = Codegen.lower ~mode:Codegen.Full (Build.finish b) in
  let opt = Ir_opt.optimize_bytecode (L.linearize prog) in
  let h = Ir_opt.opcode_histogram opt in
  (* with probes instrumented the jnz may fuse one step further into
     the probe-carrying jnz.p — either way the [not; jz] pair is gone *)
  Alcotest.(check bool) "jnz emitted" true (h.(L.op_jnz) > 0 || h.(L.op_jnz_p) > 0);
  same_outputs "fused jnz" prog ~steps:60

let test_bc_fused_f32_arith () =
  let b = Build.create "BF32" in
  let u = Build.inport b "u" Dtype.Float32 in
  let v = Build.inport b "v" Dtype.Float32 in
  let s = Build.sum b [ u; v ] in
  let p = Build.product b [ s; u ] in
  let q = Build.product b ~ops:"*/" [ p; v ] in
  Build.outport b "y" (Build.sum b ~signs:"+-" [ q; u ]);
  let prog = Codegen.lower ~mode:Codegen.Plain (Build.finish b) in
  let opt = Ir_opt.optimize_bytecode (L.linearize prog) in
  let h = Ir_opt.opcode_histogram opt in
  Alcotest.(check bool) "add.f32 emitted" true (h.(L.op_add_f32) > 0);
  Alcotest.(check bool) "mul.f32 emitted" true (h.(L.op_mul_f32) > 0);
  Alcotest.(check bool) "div.f32 emitted" true (h.(L.op_div_f32) > 0);
  Alcotest.(check bool) "sub.f32 emitted" true (h.(L.op_sub_f32) > 0);
  same_outputs "fused f32" prog ~steps:60

let test_bc_fused_arm_tails () =
  (* then-arms end in [probe; jmp] / [mov; jmp]; both collapse *)
  let b = Build.create "BTAIL" in
  let u = Build.inport b "u" Dtype.Float64 in
  let c = Build.compare_const b Graph.R_gt 0.0 u in
  Build.outport b "y" (Build.switch b c (Build.const_f b 4.0) (Build.neg b u));
  let prog = Codegen.lower ~mode:Codegen.Full (Build.finish b) in
  let opt = Ir_opt.optimize_bytecode (L.linearize prog) in
  let h = Ir_opt.opcode_histogram opt in
  Alcotest.(check bool) "probe.jmp or mov.jmp emitted" true
    (h.(L.op_probe_jmp) > 0 || h.(L.op_mov_jmp) > 0);
  same_outputs "fused arm tails" prog ~steps:60

(* probe parity for the probe-aware rules: the optimized bytecode must
   fire exactly the same probe set per step as the unoptimized *)
let same_probes name prog ~steps =
  let vm_opt = Ir_vm.compile prog in
  let vm_raw = Ir_vm.compile ~optimize:false prog in
  Ir_vm.reset vm_opt;
  Ir_vm.reset vm_raw;
  let po = Ir_vm.probes vm_opt and pr = Ir_vm.probes vm_raw in
  Ir_vm.clear_probes po;
  Ir_vm.clear_probes pr;
  let fired (p : Ir_vm.probes) =
    List.sort compare (Array.to_list (Array.sub p.Ir_vm.p_dirty 0 p.Ir_vm.p_n))
  in
  let rng = Cftcg_util.Rng.create 99L in
  for step = 1 to steps do
    Array.iteri
      (fun i var ->
        let v = rng_input rng var in
        Ir_vm.set_input vm_opt i v;
        Ir_vm.set_input vm_raw i v)
      prog.Ir.inputs;
    Ir_vm.step vm_opt;
    Ir_vm.step vm_raw;
    if fired po <> fired pr then Alcotest.failf "%s: probe sets diverge at step %d" name step;
    Ir_vm.clear_probes po;
    Ir_vm.clear_probes pr
  done

let test_bc_probe_compare_jumps () =
  (* instrumented switch: the decision probe on the fall-through arm
     rides along in the compare-jump's own dispatch (jlt.p .. jge.p) *)
  List.iter
    (fun (rel, fused_p, label) ->
      let b = Build.create ("BPC" ^ label) in
      let u = Build.inport b "u" Dtype.Float64 in
      let v = Build.inport b "v" Dtype.Float64 in
      let c = Build.relational b rel u v in
      Build.outport b "y" (Build.switch b c (Build.sum b [ u; v ]) (Build.neg b u));
      let prog = Codegen.lower ~mode:Codegen.Full (Build.finish b) in
      let opt = Ir_opt.optimize_bytecode (L.linearize prog) in
      let h = Ir_opt.opcode_histogram opt in
      Alcotest.(check bool) (label ^ " probe-carrying compare emitted") true (h.(fused_p) > 0);
      same_outputs ("probe fused " ^ label) prog ~steps:60;
      same_probes ("probe fused " ^ label) prog ~steps:60)
    [ (Graph.R_lt, L.op_jlt_p, "jlt.p"); (Graph.R_le, L.op_jle_p, "jle.p");
      (Graph.R_eq, L.op_jeq_p, "jeq.p"); (Graph.R_ne, L.op_jne_p, "jne.p");
      (Graph.R_gt, L.op_jgt_p, "jgt.p"); (Graph.R_ge, L.op_jge_p, "jge.p") ]

let test_bc_probe_logic_jumps () =
  (* a logic-op condition keeps its jz (no compare to fuse with), so
     the arm probe lands in jz.p / jnz.p *)
  let b = Build.create "BPL" in
  let u = Build.inport b "u" Dtype.Float64 in
  let v = Build.inport b "v" Dtype.Float64 in
  let c = Build.and_ b (Build.compare_const b Graph.R_gt 0.0 u) (Build.compare_const b Graph.R_lt 1.0 v) in
  Build.outport b "y" (Build.switch b c (Build.sum b [ u; v ]) (Build.neg b u));
  let prog = Codegen.lower ~mode:Codegen.Full (Build.finish b) in
  let opt = Ir_opt.optimize_bytecode (L.linearize prog) in
  let h = Ir_opt.opcode_histogram opt in
  Alcotest.(check bool) "jz.p or jnz.p emitted" true (h.(L.op_jz_p) > 0 || h.(L.op_jnz_p) > 0);
  same_outputs "probe fused jz" prog ~steps:60;
  same_probes "probe fused jz" prog ~steps:60

(* base linearization for the hand-written bytecode below: a real
   instrumented model supplies valid n_probes / register counts, its
   step stream is replaced per test *)
let dedup_base () =
  let b = Build.create "BDEDUP" in
  let u = Build.inport b "u" Dtype.Float64 in
  Build.outport b "y"
    (Build.switch b (Build.compare_const b Graph.R_gt 0.0 u) u (Build.neg b u));
  L.linearize (Codegen.lower ~mode:Codegen.Full (Build.finish b))

let test_bc_probe_dedup_straight_line () =
  (* three fires of the same cell in a straight line: the buffer write
     is idempotent, so only the first survives *)
  let lin = dedup_base () in
  let dup =
    { lin with L.l_init = [| L.op_halt |];
               l_step = [| L.op_probe; 0; L.op_probe; 0; L.op_probe; 0; L.op_halt |] }
  in
  let opt = Ir_opt.optimize_bytecode dup in
  Alcotest.(check int) "duplicates dropped" 1 (Ir_opt.opcode_histogram opt).(L.op_probe)

let test_bc_probe_dedup_stops_at_join () =
  (* pc0: probe 0;  pc2: jz r0 -> 9;  pc5: probe 0 (dominated, drops);
     pc7: halt;  pc8: probe 0 (jump target: new region, survives) *)
  let lin = dedup_base () in
  let joined =
    { lin with L.l_init = [| L.op_halt |];
               l_step = [| L.op_probe; 0; L.op_jz; 0; 8; L.op_probe; 0; L.op_halt;
                           L.op_probe; 0; L.op_halt |] }
  in
  let opt = Ir_opt.optimize_bytecode joined in
  Alcotest.(check int) "dominated copy dropped, join copy kept" 2
    (Ir_opt.opcode_histogram opt).(L.op_probe)

let test_bc_probe_dedup_uses_branch_knowledge () =
  (* reaching the instruction after a probe-carrying branch means the
     branch fell through and its probe fired — a plain re-fire of the
     same cell on that path is dead *)
  let lin = dedup_base () in
  let carried =
    { lin with L.l_init = [| L.op_halt |];
               l_step = [| L.op_jgt_p; 0; 0; 0; 8; L.op_probe; 0; L.op_halt;
                           L.op_probe; 0; L.op_halt |] }
  in
  let opt = Ir_opt.optimize_bytecode carried in
  let h = Ir_opt.opcode_histogram opt in
  Alcotest.(check int) "fall-through re-fire dropped" 1 h.(L.op_probe);
  Alcotest.(check int) "branch keeps its probe" 1 h.(L.op_jgt_p)

let test_bc_shrinks_bench_models () =
  List.iter
    (fun (e : Cftcg_bench_models.Bench_models.entry) ->
      let prog =
        Codegen.lower ~mode:Codegen.Full (Lazy.force e.Cftcg_bench_models.Bench_models.model)
      in
      let lin = L.linearize prog in
      let opt = Ir_opt.optimize_bytecode lin in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d -> %d insts" e.Cftcg_bench_models.Bench_models.name
           (Ir_opt.static_count lin) (Ir_opt.static_count opt))
        true
        (Ir_opt.static_count opt < Ir_opt.static_count lin))
    Cftcg_bench_models.Bench_models.all

let test_bc_idempotent () =
  let prog = Codegen.lower ~mode:Codegen.Full (Fixtures.kitchen_sink_model ()) in
  let once = Ir_opt.optimize_bytecode (L.linearize prog) in
  let twice = Ir_opt.optimize_bytecode once in
  Alcotest.(check int) "fixpoint" (Ir_opt.static_count once) (Ir_opt.static_count twice)

let suites =
  [ ( "ir.opt",
      [ Alcotest.test_case "preserves fixtures" `Slow test_preserves_fixtures;
        Alcotest.test_case "preserves bench models" `Slow test_preserves_bench_models;
        Alcotest.test_case "constant folding" `Quick test_constant_folding_works;
        Alcotest.test_case "constant branch pruned" `Quick test_constant_branch_pruned;
        Alcotest.test_case "dead store removed" `Quick test_dead_store_removed;
        Alcotest.test_case "copy propagation" `Quick test_copy_propagation;
        Alcotest.test_case "idempotent" `Quick test_optimizer_is_idempotent;
        Alcotest.test_case "shrinks bench models" `Quick test_optimizer_shrinks_bench_models ] );
    ( "ir.opt.bytecode",
      [ Alcotest.test_case "constant folding" `Quick test_bc_constant_folding;
        Alcotest.test_case "copy propagation" `Quick test_bc_copy_propagation;
        Alcotest.test_case "DCE respects roots" `Quick test_bc_dce_respects_roots;
        Alcotest.test_case "jump threading" `Quick test_bc_jump_threading;
        Alcotest.test_case "fused compare jumps" `Quick test_bc_fused_compare_jumps;
        Alcotest.test_case "fused jnz" `Quick test_bc_fused_jnz;
        Alcotest.test_case "fused f32 arithmetic" `Quick test_bc_fused_f32_arith;
        Alcotest.test_case "fused arm tails" `Quick test_bc_fused_arm_tails;
        Alcotest.test_case "probe-carrying compare jumps" `Quick test_bc_probe_compare_jumps;
        Alcotest.test_case "probe-carrying logic jumps" `Quick test_bc_probe_logic_jumps;
        Alcotest.test_case "probe dedup straight line" `Quick test_bc_probe_dedup_straight_line;
        Alcotest.test_case "probe dedup stops at join" `Quick test_bc_probe_dedup_stops_at_join;
        Alcotest.test_case "probe dedup uses branch knowledge" `Quick
          test_bc_probe_dedup_uses_branch_knowledge;
        Alcotest.test_case "shrinks bench bytecode" `Quick test_bc_shrinks_bench_models;
        Alcotest.test_case "idempotent" `Quick test_bc_idempotent ] ) ]
