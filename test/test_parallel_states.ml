(* Tests for parallel (AND) state decomposition: both regions run
   each step, enter/exit together, and keep independent sub-state. *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Interp = Cftcg_interp.Interp
open Chart

(* Off <-> Operational(parallel):
     region Motor:  Idle -> Run when cmd, Run -> Idle when !cmd;
                    Run during: rpm += 10
     region Meter:  counts every operational step into ticks
   Exit of Operational zeroes rpm (region exit) and bumps sessions. *)
let machine =
  let power = in_ 0 in
  let cmd = in_ 1 in
  {
    chart_name = "ParallelM";
    inputs = [| ("power", Dtype.Bool); ("cmd", Dtype.Bool) |];
    outputs = [| ("rpm", Dtype.Int32); ("ticks", Dtype.Int32); ("sessions", Dtype.Int32) |];
    locals = [||];
    states =
      [| leaf "Off" ~outgoing:[ { guard = power; actions = []; dst = 1 } ];
         parallel_composite "Operational"
           ~exit_actions:[ Set_out (2, out 2 +: num 1.) ]
           ~outgoing:[ { guard = not_ power; actions = []; dst = 0 } ]
           [ composite "Motor"
               ~exit_actions:[ Set_out (0, num 0.) ]
               [ leaf "Idle" ~outgoing:[ { guard = cmd; actions = []; dst = 1 } ];
                 leaf "Run"
                   ~during:[ Set_out (0, out 0 +: num 10.) ]
                   ~outgoing:[ { guard = not_ cmd; actions = []; dst = 0 } ] ];
             leaf "Meter" ~during:[ Set_out (1, out 1 +: num 1.) ] ] |];
    init_state = 0;
  }

let model () =
  let b = B.create "ParallelModel" in
  let power = B.inport b "power" Dtype.Bool in
  let cmd = B.inport b "cmd" Dtype.Bool in
  let outs = B.chart b machine [ power; cmd ] in
  B.outport b "rpm" outs.(0);
  B.outport b "ticks" outs.(1);
  B.outport b "sessions" outs.(2);
  B.finish b

let drive c power cmd =
  Cftcg_ir.Ir_compile.set_input c 0 (Value.of_bool power);
  Cftcg_ir.Ir_compile.set_input c 1 (Value.of_bool cmd);
  Cftcg_ir.Ir_compile.step c;
  ( Value.to_int (Cftcg_ir.Ir_compile.get_output c 0),
    Value.to_int (Cftcg_ir.Ir_compile.get_output c 1),
    Value.to_int (Cftcg_ir.Ir_compile.get_output c 2) )

let test_both_regions_run () =
  let c = Cftcg_ir.Ir_compile.compile (Codegen.lower (model ())) in
  Cftcg_ir.Ir_compile.reset c;
  Alcotest.(check (triple int int int)) "power on" (0, 0, 0) (drive c true false);
  (* both regions active: meter ticks while motor idles *)
  Alcotest.(check (triple int int int)) "meter only" (0, 1, 0) (drive c true false);
  (* motor starts: Idle->Run transition step (no during yet), meter keeps ticking *)
  Alcotest.(check (triple int int int)) "motor starting" (0, 2, 0) (drive c true true);
  Alcotest.(check (triple int int int)) "both running" (10, 3, 0) (drive c true true);
  Alcotest.(check (triple int int int)) "both running 2" (20, 4, 0) (drive c true true);
  (* power off: outer transition exits both regions; Motor.exit zeroes rpm *)
  Alcotest.(check (triple int int int)) "shutdown" (0, 4, 1) (drive c false true);
  (* meter holds its count across sessions (no entry reset modelled) *)
  Alcotest.(check (triple int int int)) "restart" (0, 4, 1) (drive c true false);
  Alcotest.(check (triple int int int)) "meter resumes" (0, 5, 1) (drive c true false)

let test_interp_matches_compiled () =
  let m = model () in
  let prog = Codegen.lower ~mode:Codegen.Plain m in
  let c = Cftcg_ir.Ir_compile.compile prog in
  let e = Cftcg_ir.Ir_eval.create prog in
  let interp = Interp.create m in
  Cftcg_ir.Ir_compile.reset c;
  Cftcg_ir.Ir_eval.reset e;
  Interp.reset interp;
  let rng = Cftcg_util.Rng.create 51L in
  for step = 1 to 800 do
    let power = Cftcg_util.Rng.int rng 6 <> 0 in
    let cmd = Cftcg_util.Rng.bool rng in
    let set i v =
      Cftcg_ir.Ir_compile.set_input c i v;
      Cftcg_ir.Ir_eval.set_input e i v;
      Interp.set_input interp i v
    in
    set 0 (Value.of_bool power);
    set 1 (Value.of_bool cmd);
    Cftcg_ir.Ir_compile.step c;
    Cftcg_ir.Ir_eval.step e;
    Interp.step interp;
    for o = 0 to 2 do
      let vc = Value.to_float (Cftcg_ir.Ir_compile.get_output c o) in
      let ve = Value.to_float (Cftcg_ir.Ir_eval.get_output e o) in
      let vi = Value.to_float (Interp.get_output interp o) in
      if vc <> ve || vc <> vi then
        Alcotest.failf "output %d diverges at step %d: compiled=%g eval=%g interp=%g" o step vc ve
          vi
    done
  done

let test_slx_roundtrip () =
  let m = model () in
  Alcotest.(check bool) "roundtrip" true (Slx.load_string (Slx.save_string m) = m)

let test_validation_rejects_region_transitions () =
  let bad =
    { machine with
      states =
        Array.map
          (fun st ->
            if st.parallel then
              { st with
                children =
                  Array.map
                    (fun r -> { r with outgoing = [ { guard = num 1.; actions = []; dst = 0 } ] })
                    st.children
              }
            else st)
          machine.states
    }
  in
  match Chart.validate bad with
  | Error msg ->
    Alcotest.(check bool) "mentions parallel" true
      (String.split_on_char ' ' msg |> List.exists (( = ) "parallel"))
  | Ok () -> Alcotest.fail "region transitions accepted"

let test_fuzz_covers_parallel_chart () =
  let prog = Codegen.lower (model ()) in
  let r =
    Cftcg_fuzz.Fuzzer.run
      ~config:{ Cftcg_fuzz.Fuzzer.default_config with Cftcg_fuzz.Fuzzer.seed = 2L }
      prog (Cftcg_fuzz.Fuzzer.Exec_budget 5000)
  in
  let suite =
    List.map (fun (tc : Cftcg_fuzz.Fuzzer.test_case) -> tc.Cftcg_fuzz.Fuzzer.tc_data)
      r.Cftcg_fuzz.Fuzzer.test_suite
  in
  let report = Cftcg.Evaluate.replay prog suite in
  Alcotest.(check (float 0.01)) "full decision coverage" 100.0
    report.Cftcg_coverage.Recorder.decision_pct

let suites =
  [ ( "model.parallel_states",
      [ Alcotest.test_case "both regions run" `Quick test_both_regions_run;
        Alcotest.test_case "interp = eval = compiled" `Quick test_interp_matches_compiled;
        Alcotest.test_case "slx roundtrip" `Quick test_slx_roundtrip;
        Alcotest.test_case "validation" `Quick test_validation_rejects_region_transitions;
        Alcotest.test_case "fuzzable to 100%" `Quick test_fuzz_covers_parallel_chart ] ) ]
