(* Aggregates every library's alcotest suite into one runner. *)

let () =
  Alcotest.run "cftcg"
    (Test_util.suites @ Test_xml.suites @ Test_value.suites @ Test_graph.suites
   @ Test_slx.suites @ Test_ir.suites @ Test_codegen.suites @ Test_coverage.suites @ Test_models.suites @ Test_fuzz.suites @ Test_symexec.suites @ Test_pipeline.suites @ Test_interp.suites @ Test_ir_opt.suites @ Test_assertions.suites @ Test_hybrid.suites @ Test_ranges.suites @ Test_minimize.suites @ Test_dictionary.suites @ Test_coverage_ext.suites @ Test_hierarchy.suites @ Test_c_backend.suites @ Test_random_models.suites @ Test_vm_diff.suites @ Test_cemit_more.suites @ Test_parallel_states.suites @ Test_campaign.suites @ Test_obs.suites @ Test_log.suites @ Test_fault.suites @ Test_store_migration.suites @ Test_serve.suites)
