(* Tests for the fuzzing layer: field layout, the eight mutation
   strategies (alignment invariants), and the model-oriented loop
   (Algorithm 1 semantics). *)

open Cftcg_model
module Layout = Cftcg_fuzz.Layout
module Mutate = Cftcg_fuzz.Mutate
module Fuzzer = Cftcg_fuzz.Fuzzer
module Codegen = Cftcg_codegen.Codegen
module Rng = Cftcg_util.Rng

let sample_layout () =
  Layout.of_inports
    [| ("enable", Dtype.Int8); ("power", Dtype.Int32); ("panel", Dtype.Int32) |]

let mixed_layout () =
  Layout.of_inports
    [| ("b", Dtype.Bool); ("i8", Dtype.Int8); ("u16", Dtype.UInt16); ("f32", Dtype.Float32);
       ("f64", Dtype.Float64) |]

let test_layout_offsets () =
  let l = sample_layout () in
  Alcotest.(check int) "tuple length (paper Fig. 3: 9)" 9 l.Layout.tuple_len;
  Alcotest.(check (list int)) "offsets" [ 0; 1; 5 ]
    (Array.to_list (Array.map (fun f -> f.Layout.f_offset) l.Layout.fields))

let test_layout_trailing_discard () =
  let l = sample_layout () in
  Alcotest.(check int) "2 tuples in 20 bytes" 2 (Layout.n_tuples l (Bytes.create 20));
  Alcotest.(check int) "0 tuples in 8 bytes" 0 (Layout.n_tuples l (Bytes.create 8))

let test_field_roundtrip () =
  let l = mixed_layout () in
  let data = Bytes.make (2 * l.Layout.tuple_len) '\000' in
  Layout.set_field l data ~tuple:1 ~field:2 (Value.of_int Dtype.UInt16 50000);
  Layout.set_field l data ~tuple:1 ~field:4 (Value.of_float Dtype.Float64 (-2.5));
  Alcotest.(check int) "u16" 50000 (Value.to_int (Layout.field_value l data ~tuple:1 ~field:2));
  Alcotest.(check (float 0.0)) "f64" (-2.5)
    (Value.to_float (Layout.field_value l data ~tuple:1 ~field:4));
  Alcotest.(check int) "other tuple untouched" 0
    (Value.to_int (Layout.field_value l data ~tuple:0 ~field:2))

let test_layout_candidate_caches () =
  (* the cached index arrays must agree with the dtype predicate and
     survive with_ranges (ranges never change dtypes) *)
  let check l =
    Array.iter
      (fun i -> Alcotest.(check bool) "int candidate" false (Dtype.is_float l.Layout.fields.(i).Layout.f_ty))
      l.Layout.int_fields;
    Array.iter
      (fun i -> Alcotest.(check bool) "float candidate" true (Dtype.is_float l.Layout.fields.(i).Layout.f_ty))
      l.Layout.float_fields;
    Alcotest.(check int) "caches partition the fields"
      (Array.length l.Layout.fields)
      (Array.length l.Layout.int_fields + Array.length l.Layout.float_fields)
  in
  let l = mixed_layout () in
  check l;
  let ranged = Layout.with_ranges l [ ("u16", 0.0, 100.0) ] in
  check ranged;
  Alcotest.(check bool) "int cache carried across with_ranges" true
    (ranged.Layout.int_fields == l.Layout.int_fields)

let test_truncate_tuples_zero_copy () =
  let l = sample_layout () in
  let aligned = Bytes.create (3 * l.Layout.tuple_len) in
  Alcotest.(check bool) "aligned input returned physically unchanged" true
    (Mutate.truncate_tuples l aligned == aligned);
  let ragged = Bytes.create ((2 * l.Layout.tuple_len) + 3) in
  let out = Mutate.truncate_tuples l ragged in
  Alcotest.(check bool) "ragged input copied" true (out != ragged);
  Alcotest.(check int) "ragged tail dropped" (2 * l.Layout.tuple_len) (Bytes.length out)

let test_strategy_names_unique () =
  let names = Array.to_list (Array.map Mutate.strategy_name Mutate.all_strategies) in
  Alcotest.(check int) "eight strategies (Table 1)" 8 (List.length names);
  Alcotest.(check int) "unique names" 8 (List.length (List.sort_uniq compare names))

(* Property: every strategy preserves tuple alignment and nonemptiness. *)
let prop_mutations_stay_aligned =
  QCheck.Test.make ~name:"mutations preserve tuple alignment" ~count:2000
    QCheck.(make Gen.(triple (int_bound 7) (int_bound 10000) (int_bound 20)))
    (fun (strategy_ix, seed, tuples) ->
      let l = mixed_layout () in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let data =
        Bytes.concat Bytes.empty (List.init tuples (fun _ -> Layout.random_tuple_bytes l rng))
      in
      let other = Bytes.concat Bytes.empty (List.init 3 (fun _ -> Layout.random_tuple_bytes l rng)) in
      let strategy = Mutate.all_strategies.(strategy_ix) in
      let result = Mutate.apply l rng strategy data ~other ~max_tuples:64 in
      Bytes.length result > 0
      && Bytes.length result mod l.Layout.tuple_len = 0
      && Bytes.length result <= 64 * l.Layout.tuple_len)

let test_erase_shrinks () =
  let l = sample_layout () in
  let rng = Rng.create 3L in
  let data = Bytes.concat Bytes.empty (List.init 10 (fun _ -> Layout.random_tuple_bytes l rng)) in
  let result = Mutate.apply l rng Mutate.Erase_tuples data ~other:data ~max_tuples:64 in
  Alcotest.(check bool) "fewer tuples" true (Layout.n_tuples l result < 10)

let test_shuffle_preserves_multiset () =
  let l = sample_layout () in
  let rng = Rng.create 4L in
  let data = Bytes.concat Bytes.empty (List.init 8 (fun _ -> Layout.random_tuple_bytes l rng)) in
  let result = Mutate.apply l rng Mutate.Shuffle_tuples data ~other:data ~max_tuples:64 in
  let tuples b =
    List.init (Layout.n_tuples l b) (fun i ->
        Bytes.to_string (Bytes.sub b (i * l.Layout.tuple_len) l.Layout.tuple_len))
    |> List.sort compare
  in
  Alcotest.(check (list string)) "same tuples" (tuples data) (tuples result)

let test_cross_over_prefix_suffix () =
  let l = sample_layout () in
  let rng = Rng.create 5L in
  let a = Bytes.make (4 * 9) 'a' in
  let b = Bytes.make (6 * 9) 'b' in
  let result = Mutate.apply l rng Mutate.Tuples_cross_over a ~other:b ~max_tuples:64 in
  (* result = prefix of a + suffix of b: all 'a's precede all 'b's *)
  let s = Bytes.to_string result in
  let first_b = try String.index s 'b' with Not_found -> String.length s in
  String.iteri
    (fun i c ->
      if i < first_b then Alcotest.(check char) "prefix is a" 'a' c
      else Alcotest.(check char) "suffix is b" 'b' c)
    s

let test_change_integer_touches_one_field () =
  let l = mixed_layout () in
  let rng = Rng.create 6L in
  let data = Bytes.make (3 * l.Layout.tuple_len) '\000' in
  let result = Mutate.apply l rng Mutate.Change_binary_integer data ~other:data ~max_tuples:64 in
  Alcotest.(check int) "same length" (Bytes.length data) (Bytes.length result);
  (* float fields must be untouched *)
  for t = 0 to 2 do
    Alcotest.(check (float 0.0)) "f32 untouched" 0.0
      (Value.to_float (Layout.field_value l result ~tuple:t ~field:3));
    Alcotest.(check (float 0.0)) "f64 untouched" 0.0
      (Value.to_float (Layout.field_value l result ~tuple:t ~field:4))
  done

let test_blind_mutation_can_misalign () =
  (* the defining property of the Fuzz-Only mutator: byte erase /
     insert produce non-multiple-of-tuple lengths *)
  let rng = Rng.create 7L in
  let data = Bytes.make 36 'x' in
  let misaligned = ref false in
  for _ = 1 to 200 do
    let r = Mutate.mutate_blind rng data ~other:data ~max_len:1000 in
    if Bytes.length r mod 9 <> 0 then misaligned := true
  done;
  Alcotest.(check bool) "misalignment occurs" true !misaligned

(* Algorithm 1 on a hand-crafted program: y fires probe A when u > 0,
   probe B otherwise. Alternating inputs maximize the metric. *)
let metric_model () =
  let b = Build.create "MetricM" in
  let u = Build.inport b "u" Dtype.Int8 in
  let y = Build.compare_zero b Graph.R_gt u in
  Build.outport b "y" y;
  Build.finish b

let encode_stream values =
  let data = Bytes.create (List.length values) in
  List.iteri (fun i v -> Cftcg_util.Bytecodec.set_u8 data i (v land 0xFF)) values;
  data

let test_iteration_difference_metric () =
  let prog = Codegen.lower (metric_model ()) in
  (* constant stream: the covered set never changes after step 1 *)
  let constant = encode_stream [ 1; 1; 1; 1; 1; 1 ] in
  let alternating = encode_stream [ 1; 0; 1; 0; 1; 0 ] in
  let m_const = Fuzzer.replay_metric prog constant in
  let m_alt = Fuzzer.replay_metric prog alternating in
  Alcotest.(check bool)
    (Printf.sprintf "alternating metric (%d) > constant metric (%d)" m_alt m_const)
    true (m_alt > m_const)

let test_metric_counts_differences () =
  (* exact check against Algorithm 1 on the tiny model:
     decision probes: outcome(true), outcome(false); condition probes
     true/false. With input [1]: first iteration sets 'true' cells:
     diff = #cells set. With [1;0]: second iteration flips all cells:
     diff = first + both sets. *)
  let prog = Codegen.lower (metric_model ()) in
  let m1 = Fuzzer.replay_metric prog (encode_stream [ 1 ]) in
  let m2 = Fuzzer.replay_metric prog (encode_stream [ 1; 0 ]) in
  Alcotest.(check int) "one iteration lights 2 cells" 2 m1;
  Alcotest.(check int) "flip lights 2 + 4 differences" (2 + 4) m2

let test_fuzzer_budget_respected () =
  let prog = Codegen.lower (metric_model ()) in
  let r = Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 1L } prog (Fuzzer.Exec_budget 100) in
  Alcotest.(check int) "exactly 100 executions" 100 r.Fuzzer.stats.Fuzzer.executions

let test_fuzzer_rejects_closed_model () =
  let b = Build.create "NoInputs" in
  let c = Build.const_f b 1.0 in
  Build.outport b "y" c;
  let prog = Codegen.lower (Build.finish b) in
  match Fuzzer.run prog (Fuzzer.Exec_budget 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fuzzer accepted a model without inports"

let test_seed_corpus_executed_first () =
  (* a seed that triggers the rare equality branch guarantees coverage
     that random exploration essentially never finds in a few execs *)
  let b = Build.create "SeedM" in
  let u = Build.inport b "u" Dtype.Int32 in
  let hit = Build.compare_const b Graph.R_eq 987654321.0 u in
  Build.outport b "y" hit;
  let prog = Codegen.lower (Build.finish b) in
  let layout = Cftcg_fuzz.Layout.of_program prog in
  let seed_case = Bytes.create layout.Cftcg_fuzz.Layout.tuple_len in
  Cftcg_fuzz.Layout.set_field layout seed_case ~tuple:0 ~field:0
    (Value.of_int Dtype.Int32 987654321);
  let run seeds =
    (* dictionary off: it would extract the magic constant itself *)
    let config = { Fuzzer.default_config with Fuzzer.seed = 11L; seeds; use_dictionary = false } in
    let r = Fuzzer.run ~config prog (Fuzzer.Exec_budget 50) in
    let suite = List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) r.Fuzzer.test_suite in
    (Cftcg.Evaluate.replay prog suite).Cftcg_coverage.Recorder.decision_pct
  in
  Alcotest.(check bool) "without seed, partial" true (run [] < 100.0);
  Alcotest.(check (float 0.01)) "with seed, full" 100.0 (run [ seed_case ])

let test_test_suite_only_on_new_coverage () =
  let prog = Codegen.lower (metric_model ()) in
  let r = Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 2L } prog (Fuzzer.Exec_budget 5000) in
  (* the model has 6 probe cells; each test case must claim >= 1 new *)
  let claimed =
    List.fold_left (fun acc (tc : Fuzzer.test_case) -> acc + tc.Fuzzer.tc_new_probes) 0 r.Fuzzer.test_suite
  in
  Alcotest.(check bool) "claims bounded by probes" true (claimed <= prog.Cftcg_ir.Ir.n_probes);
  List.iter
    (fun (tc : Fuzzer.test_case) ->
      Alcotest.(check bool) "every case contributes" true (tc.Fuzzer.tc_new_probes > 0))
    r.Fuzzer.test_suite

let suites =
  [ ( "fuzz.layout",
      [ Alcotest.test_case "offsets" `Quick test_layout_offsets;
        Alcotest.test_case "trailing discard" `Quick test_layout_trailing_discard;
        Alcotest.test_case "field roundtrip" `Quick test_field_roundtrip;
        Alcotest.test_case "candidate caches" `Quick test_layout_candidate_caches;
        Alcotest.test_case "truncate is zero-copy" `Quick test_truncate_tuples_zero_copy ] );
    ( "fuzz.mutate",
      [ Alcotest.test_case "eight strategies" `Quick test_strategy_names_unique;
        Alcotest.test_case "erase shrinks" `Quick test_erase_shrinks;
        Alcotest.test_case "shuffle preserves multiset" `Quick test_shuffle_preserves_multiset;
        Alcotest.test_case "crossover structure" `Quick test_cross_over_prefix_suffix;
        Alcotest.test_case "int mutation scoped" `Quick test_change_integer_touches_one_field;
        Alcotest.test_case "blind mutation misaligns" `Quick test_blind_mutation_can_misalign;
        QCheck_alcotest.to_alcotest ~verbose:false prop_mutations_stay_aligned ] );
    ( "fuzz.loop",
      [ Alcotest.test_case "iteration-difference metric" `Quick test_iteration_difference_metric;
        Alcotest.test_case "metric counts differences" `Quick test_metric_counts_differences;
        Alcotest.test_case "exec budget respected" `Quick test_fuzzer_budget_respected;
        Alcotest.test_case "rejects closed model" `Quick test_fuzzer_rejects_closed_model;
        Alcotest.test_case "seed corpus" `Quick test_seed_corpus_executed_first;
        Alcotest.test_case "test cases claim new coverage" `Quick test_test_suite_only_on_new_coverage
      ] ) ]
