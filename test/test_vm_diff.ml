(* Differential tests for the bytecode VM backend: on random programs
   and random input streams, Ir_vm must be observationally identical
   to both Ir_compile (closures) and Ir_eval (reference interpreter)
   — same outputs, same probe sets, same condition/decision/branch
   records. This is the correctness gate for the VM fast path. *)

open Cftcg_model
open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen
module Rng = Cftcg_util.Rng

let agree name a b =
  if a <> b && not (Float.is_nan a && Float.is_nan b) then
    Alcotest.failf "%s: %.17g <> %.17g" name a b

(* Run all three backends in lockstep over one random model and check
   every output at every step. Returns unit or fails the test. *)
let check_outputs_lockstep ~tag ~steps rng prog =
  let vm = Ir_vm.compile prog in
  let compiled = Ir_compile.compile prog in
  let evaluator = Ir_eval.create prog in
  Ir_vm.reset vm;
  Ir_compile.reset compiled;
  Ir_eval.reset evaluator;
  let n_out = Array.length prog.Ir.outputs in
  for step = 1 to steps do
    Array.iteri
      (fun i (var : Ir.var) ->
        let v = Model_gen.random_input rng var.Ir.vty in
        Ir_vm.set_input vm i v;
        Ir_compile.set_input compiled i v;
        Ir_eval.set_input evaluator i v)
      prog.Ir.inputs;
    Ir_vm.step vm;
    Ir_compile.step compiled;
    Ir_eval.step evaluator;
    for o = 0 to n_out - 1 do
      let reference = Value.to_float (Ir_compile.get_output compiled o) in
      let name which = Printf.sprintf "%s step %d output %d: closure vs %s" tag step o which in
      agree (name "vm") reference (Value.to_float (Ir_vm.get_output vm o));
      agree (name "evaluator") reference (Value.to_float (Ir_eval.get_output evaluator o))
    done
  done

let test_vm_outputs_match_random_models () =
  let rng = Rng.create 90210L in
  for model_ix = 1 to 120 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    check_outputs_lockstep ~tag:(Printf.sprintf "model %d" model_ix) ~steps:60 rng prog
  done

(* Full-hook observational equality: probes, conditions, decisions
   and branch-distance reports, in order, across backends. *)
type trace = {
  mutable probes : int list;
  mutable conds : (int * int * bool) list;
  mutable decs : (int * int) list;
  mutable branches : (int * bool * float * float) list;
}

let fresh_trace () = { probes = []; conds = []; decs = []; branches = [] }

let hooks_of trace =
  {
    Hooks.on_probe = Some (fun id -> trace.probes <- id :: trace.probes);
    on_cond = Some (fun d i b -> trace.conds <- (d, i, b) :: trace.conds);
    on_decision = Some (fun d o -> trace.decs <- (d, o) :: trace.decs);
    on_branch =
      Some (fun ix taken dt df -> trace.branches <- (ix, taken, dt, df) :: trace.branches);
  }

let test_vm_hooks_fire_identically () =
  let rng = Rng.create 1618L in
  for model_ix = 1 to 40 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    let steps = 25 in
    let inputs =
      Array.init steps (fun _ ->
          Array.map (fun (v : Ir.var) -> Model_gen.random_input rng v.Ir.vty) prog.Ir.inputs)
    in
    let via_vm trace =
      let vm = Ir_vm.compile ~hooks:(hooks_of trace) prog in
      Ir_vm.reset vm;
      Array.iter
        (fun vals ->
          Array.iteri (fun i v -> Ir_vm.set_input vm i v) vals;
          Ir_vm.step vm)
        inputs
    in
    let via_compile trace =
      let c = Ir_compile.compile ~hooks:(hooks_of trace) prog in
      Ir_compile.reset c;
      Array.iter
        (fun vals ->
          Array.iteri (fun i v -> Ir_compile.set_input c i v) vals;
          Ir_compile.step c)
        inputs
    in
    let via_eval trace =
      let e = Ir_eval.create prog in
      let hooks = hooks_of trace in
      Ir_eval.reset ~hooks e;
      Array.iter
        (fun vals ->
          Array.iteri (fun i v -> Ir_eval.set_input e i v) vals;
          Ir_eval.step ~hooks e)
        inputs
    in
    let tv = fresh_trace () and tc = fresh_trace () and te = fresh_trace () in
    via_vm tv;
    via_compile tc;
    via_eval te;
    let ctx = Printf.sprintf "model %d" model_ix in
    Alcotest.(check (list int)) (ctx ^ " probes vm=closure") tc.probes tv.probes;
    Alcotest.(check (list int)) (ctx ^ " probes vm=eval") te.probes tv.probes;
    Alcotest.(check bool) (ctx ^ " conds vm=closure") true (tv.conds = tc.conds);
    Alcotest.(check bool) (ctx ^ " conds vm=eval") true (tv.conds = te.conds);
    Alcotest.(check bool) (ctx ^ " decisions vm=closure") true (tv.decs = tc.decs);
    Alcotest.(check bool) (ctx ^ " decisions vm=eval") true (tv.decs = te.decs);
    Alcotest.(check bool) (ctx ^ " branches vm=closure") true (tv.branches = tc.branches);
    Alcotest.(check bool) (ctx ^ " branches vm=eval") true (tv.branches = te.branches)
  done

(* The VM's dirty-list probe buffer must describe exactly the set of
   probes the closure backend reports through on_probe, and stay
   internally consistent (deduplicated, byte map in sync). *)
let test_vm_probe_buffer_matches () =
  let rng = Rng.create 2718L in
  for model_ix = 1 to 40 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    let vm = Ir_vm.compile prog in
    let fired = Hashtbl.create 64 in
    let hooks = Hooks.probes_only (fun id -> Hashtbl.replace fired id ()) in
    let c = Ir_compile.compile ~hooks prog in
    Ir_vm.reset vm;
    Ir_compile.reset c;
    Ir_vm.clear_probes (Ir_vm.probes vm);
    Hashtbl.reset fired;
    for step = 1 to 30 do
      Array.iteri
        (fun i (var : Ir.var) ->
          let v = Model_gen.random_input rng var.Ir.vty in
          Ir_vm.set_input vm i v;
          Ir_compile.set_input c i v)
        prog.Ir.inputs;
      Ir_vm.step vm;
      Ir_compile.step c;
      let p = Ir_vm.probes vm in
      let dirty = Array.sub p.Ir_vm.p_dirty 0 p.Ir_vm.p_n in
      let vm_set = List.sort_uniq compare (Array.to_list dirty) in
      if List.length vm_set <> p.Ir_vm.p_n then
        Alcotest.failf "model %d step %d: dirty list has duplicates" model_ix step;
      List.iter
        (fun id ->
          if Bytes.get p.Ir_vm.p_fired id <> '\001' then
            Alcotest.failf "model %d step %d: dirty probe %d not marked fired" model_ix step id)
        vm_set;
      let closure_set = List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) fired []) in
      if vm_set <> closure_set then
        Alcotest.failf "model %d step %d: probe sets differ (vm %d, closure %d)" model_ix step
          (List.length vm_set) (List.length closure_set);
      Ir_vm.clear_probes p;
      if p.Ir_vm.p_n <> 0 then Alcotest.failf "clear_probes left %d dirty" p.Ir_vm.p_n;
      List.iter
        (fun id ->
          if Bytes.get p.Ir_vm.p_fired id <> '\000' then
            Alcotest.failf "clear_probes left probe %d marked" id)
        vm_set;
      Hashtbl.reset fired
    done
  done

(* The backend must be invisible to the fuzzing algorithm: same seed,
   same campaign — executions, coverage, metric-driven corpus and the
   emitted test suite all identical. Three-way: closures, plain VM,
   and the VM with the bytecode optimizer. *)
let test_fuzzer_backend_parity () =
  let rng = Rng.create 424242L in
  for model_ix = 1 to 12 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    let run backend optimize =
      Cftcg_fuzz.Fuzzer.run
        ~config:
          { Cftcg_fuzz.Fuzzer.default_config with
            Cftcg_fuzz.Fuzzer.seed = 99L;
            backend;
            optimize
          }
        prog (Cftcg_fuzz.Fuzzer.Exec_budget 400)
    in
    let rc = run Cftcg_fuzz.Fuzzer.Closures true in
    let compare_campaign ctx (rv : Cftcg_fuzz.Fuzzer.result) =
      let open Cftcg_fuzz.Fuzzer in
      Alcotest.(check int) (ctx ^ " executions") rc.stats.executions rv.stats.executions;
      Alcotest.(check int) (ctx ^ " iterations") rc.stats.iterations rv.stats.iterations;
      Alcotest.(check int) (ctx ^ " probes covered") rc.stats.probes_covered
        rv.stats.probes_covered;
      Alcotest.(check int) (ctx ^ " corpus size") rc.stats.corpus_size rv.stats.corpus_size;
      Alcotest.(check int) (ctx ^ " suite size") (List.length rc.test_suite)
        (List.length rv.test_suite);
      List.iter2
        (fun (a : test_case) (b : test_case) ->
          if not (Bytes.equal a.tc_data b.tc_data) || a.tc_new_probes <> b.tc_new_probes then
            Alcotest.failf "%s: test suites diverge" ctx)
        rc.test_suite rv.test_suite;
      Alcotest.(check int) (ctx ^ " failures") (List.length rc.failures) (List.length rv.failures)
    in
    compare_campaign
      (Printf.sprintf "model %d vm-opt" model_ix)
      (run Cftcg_fuzz.Fuzzer.Vm true);
    compare_campaign
      (Printf.sprintf "model %d vm-noopt" model_ix)
      (run Cftcg_fuzz.Fuzzer.Vm false)
  done

(* Batching must be invisible to the fuzzing algorithm: same seed,
   same campaign transcript whatever the lane count — the batched
   scheduler's draft-order coverage replay pins executions, the
   emitted suite (bytes and timestamps), failures and corpus
   evolution. Checked for K ∈ {1, 4, 16} with the optimizer on and
   off, against the scalar batch=1 run. *)
let test_fuzzer_batch_parity () =
  let rng = Rng.create 515151L in
  for model_ix = 1 to 8 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    let run batch optimize =
      Cftcg_fuzz.Fuzzer.run
        ~config:
          { Cftcg_fuzz.Fuzzer.default_config with
            Cftcg_fuzz.Fuzzer.seed = 7L;
            batch;
            optimize
          }
        prog (Cftcg_fuzz.Fuzzer.Exec_budget 400)
    in
    let rc = run 1 true in
    let compare_campaign ctx (rv : Cftcg_fuzz.Fuzzer.result) =
      let open Cftcg_fuzz.Fuzzer in
      Alcotest.(check int) (ctx ^ " executions") rc.stats.executions rv.stats.executions;
      Alcotest.(check int) (ctx ^ " iterations") rc.stats.iterations rv.stats.iterations;
      Alcotest.(check int) (ctx ^ " probes covered") rc.stats.probes_covered
        rv.stats.probes_covered;
      Alcotest.(check int) (ctx ^ " corpus size") rc.stats.corpus_size rv.stats.corpus_size;
      Alcotest.(check int) (ctx ^ " suite size") (List.length rc.test_suite)
        (List.length rv.test_suite);
      List.iter2
        (fun (a : test_case) (b : test_case) ->
          if
            (not (Bytes.equal a.tc_data b.tc_data))
            || a.tc_new_probes <> b.tc_new_probes || a.tc_time <> b.tc_time
          then Alcotest.failf "%s: test suites diverge" ctx)
        rc.test_suite rv.test_suite;
      Alcotest.(check int) (ctx ^ " failures") (List.length rc.failures) (List.length rv.failures);
      List.iter2
        (fun (a : failure) (b : failure) ->
          if
            (not (Bytes.equal a.f_data b.f_data))
            || a.f_time <> b.f_time || a.f_message <> b.f_message
          then Alcotest.failf "%s: failures diverge" ctx)
        rc.failures rv.failures
    in
    List.iter
      (fun batch ->
        List.iter
          (fun optimize ->
            if not (batch = 1 && optimize) then
              compare_campaign
                (Printf.sprintf "model %d batch=%d opt=%b" model_ix batch optimize)
                (run batch optimize))
          [ true; false ])
      [ 1; 4; 16 ]
  done

(* The bytecode optimizer must be observationally invisible on the VM
   itself: outputs, dirty probe lists (same order) and full hook
   traces identical with and without it. *)
let check_opt_lockstep ~tag ~steps rng prog =
  let vm_o = Ir_vm.compile prog in
  let vm_r = Ir_vm.compile ~optimize:false prog in
  Ir_vm.reset vm_o;
  Ir_vm.reset vm_r;
  let n_out = Array.length prog.Ir.outputs in
  for step = 1 to steps do
    Array.iteri
      (fun i (var : Ir.var) ->
        let v = Model_gen.random_input rng var.Ir.vty in
        Ir_vm.set_input vm_o i v;
        Ir_vm.set_input vm_r i v)
      prog.Ir.inputs;
    Ir_vm.step vm_o;
    Ir_vm.step vm_r;
    for o = 0 to n_out - 1 do
      agree
        (Printf.sprintf "%s step %d output %d: opt vs plain" tag step o)
        (Value.to_float (Ir_vm.get_output vm_r o))
        (Value.to_float (Ir_vm.get_output vm_o o))
    done;
    let dirty vm =
      let p = Ir_vm.probes vm in
      Array.to_list (Array.sub p.Ir_vm.p_dirty 0 p.Ir_vm.p_n)
    in
    Alcotest.(check (list int)) (Printf.sprintf "%s step %d dirty probes" tag step) (dirty vm_r)
      (dirty vm_o);
    Ir_vm.clear_probes (Ir_vm.probes vm_o);
    Ir_vm.clear_probes (Ir_vm.probes vm_r)
  done

let test_optimizer_invisible_on_random_models () =
  let rng = Rng.create 5150L in
  for model_ix = 1 to 80 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    check_opt_lockstep ~tag:(Printf.sprintf "model %d" model_ix) ~steps:40 rng prog
  done

let test_optimizer_invisible_to_hooks () =
  let rng = Rng.create 31337L in
  for model_ix = 1 to 25 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    let steps = 20 in
    let inputs =
      Array.init steps (fun _ ->
          Array.map (fun (v : Ir.var) -> Model_gen.random_input rng v.Ir.vty) prog.Ir.inputs)
    in
    let via optimize trace =
      let vm = Ir_vm.compile ~hooks:(hooks_of trace) ~optimize prog in
      Ir_vm.reset vm;
      Array.iter
        (fun vals ->
          Array.iteri (fun i v -> Ir_vm.set_input vm i v) vals;
          Ir_vm.step vm)
        inputs
    in
    let t_o = fresh_trace () and t_r = fresh_trace () in
    via true t_o;
    via false t_r;
    let ctx = Printf.sprintf "model %d" model_ix in
    Alcotest.(check (list int)) (ctx ^ " probes") t_r.probes t_o.probes;
    Alcotest.(check bool) (ctx ^ " conds") true (t_o.conds = t_r.conds);
    Alcotest.(check bool) (ctx ^ " decisions") true (t_o.decs = t_r.decs);
    Alcotest.(check bool) (ctx ^ " branches") true (t_o.branches = t_r.branches)
  done

let prop_optimizer_invisible =
  QCheck.Test.make ~name:"bytecode optimizer preserves VM behaviour" ~count:60
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create (Int64.of_int ((seed * 2) + 1)) in
      let prog = Codegen.lower (Model_gen.generate rng) in
      check_opt_lockstep ~tag:(Printf.sprintf "seed %d" seed) ~steps:25 rng prog;
      true)

(* The batched lockstep VM must be per-lane bit-identical to the
   scalar VM: K independent scalar instances fed the same per-lane
   input streams agree with the K-lane batch on every output and on
   every lane's dirty probe list (same order) at every step. *)
let check_batch_lockstep ~tag ~kk ~steps ~optimize rng prog =
  let bvm = Ir_vm_batch.compile ~optimize ~k:kk prog in
  let scalars = Array.init kk (fun _ -> Ir_vm.compile ~optimize prog) in
  Ir_vm_batch.reset bvm;
  Array.iter Ir_vm.reset scalars;
  Ir_vm_batch.clear_probes (Ir_vm_batch.probes bvm);
  Array.iter (fun vm -> Ir_vm.clear_probes (Ir_vm.probes vm)) scalars;
  let n_out = Array.length prog.Ir.outputs in
  for step = 1 to steps do
    for lane = 0 to kk - 1 do
      Array.iteri
        (fun i (var : Ir.var) ->
          let v = Model_gen.random_input rng var.Ir.vty in
          Ir_vm_batch.set_input bvm ~lane i v;
          Ir_vm.set_input scalars.(lane) i v)
        prog.Ir.inputs
    done;
    Ir_vm_batch.step bvm;
    Array.iter Ir_vm.step scalars;
    for lane = 0 to kk - 1 do
      for o = 0 to n_out - 1 do
        agree
          (Printf.sprintf "%s step %d lane %d output %d: scalar vs batch" tag step lane o)
          (Value.to_float (Ir_vm.get_output scalars.(lane) o))
          (Value.to_float (Ir_vm_batch.get_output bvm ~lane o))
      done;
      let sp = Ir_vm.probes scalars.(lane) in
      let scalar_dirty = Array.to_list (Array.sub sp.Ir_vm.p_dirty 0 sp.Ir_vm.p_n) in
      let bp = Ir_vm_batch.probes bvm in
      let batch_dirty =
        Array.to_list (Array.sub bp.Ir_vm_batch.bp_dirty.(lane) 0 bp.Ir_vm_batch.bp_n.(lane))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s step %d lane %d dirty probes" tag step lane)
        scalar_dirty batch_dirty;
      List.iter
        (fun id ->
          if not (Ir_vm_batch.probe_fired bvm ~lane id) then
            Alcotest.failf "%s step %d lane %d: dirty probe %d not marked in packed bytes" tag
              step lane id)
        batch_dirty;
      Ir_vm.clear_probes sp;
      Ir_vm_batch.clear_lane bp ~lane;
      if bp.Ir_vm_batch.bp_n.(lane) <> 0 then
        Alcotest.failf "%s: clear_lane left %d dirty" tag bp.Ir_vm_batch.bp_n.(lane)
    done
  done

let test_batch_matches_scalar () =
  let rng = Rng.create 7777L in
  List.iter
    (fun kk ->
      for model_ix = 1 to 10 do
        let prog = Codegen.lower (Model_gen.generate rng) in
        check_batch_lockstep
          ~tag:(Printf.sprintf "k=%d model %d" kk model_ix)
          ~kk ~steps:25 ~optimize:true rng prog
      done)
    [ 1; 4; 16 ]

let test_batch_matches_scalar_noopt () =
  let rng = Rng.create 8888L in
  for model_ix = 1 to 8 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    check_batch_lockstep
      ~tag:(Printf.sprintf "noopt model %d" model_ix)
      ~kk:4 ~steps:20 ~optimize:false rng prog
  done

(* Partial batches: lanes beyond ?lanes must be untouched by step. *)
let test_batch_partial_lanes () =
  let rng = Rng.create 9999L in
  for model_ix = 1 to 8 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    let kk = 8 in
    let live = 3 in
    let bvm = Ir_vm_batch.compile ~k:kk prog in
    let scalars = Array.init live (fun _ -> Ir_vm.compile prog) in
    Ir_vm_batch.reset ~lanes:live bvm;
    Array.iter Ir_vm.reset scalars;
    Ir_vm_batch.clear_probes (Ir_vm_batch.probes bvm);
    Array.iter (fun vm -> Ir_vm.clear_probes (Ir_vm.probes vm)) scalars;
    let n_out = Array.length prog.Ir.outputs in
    for step = 1 to 15 do
      for lane = 0 to live - 1 do
        Array.iteri
          (fun i (var : Ir.var) ->
            let v = Model_gen.random_input rng var.Ir.vty in
            Ir_vm_batch.set_input bvm ~lane i v;
            Ir_vm.set_input scalars.(lane) i v)
          prog.Ir.inputs
      done;
      Ir_vm_batch.step ~lanes:live bvm;
      Array.iter Ir_vm.step scalars;
      for lane = 0 to live - 1 do
        for o = 0 to n_out - 1 do
          agree
            (Printf.sprintf "model %d step %d lane %d output %d" model_ix step lane o)
            (Value.to_float (Ir_vm.get_output scalars.(lane) o))
            (Value.to_float (Ir_vm_batch.get_output bvm ~lane o))
        done
      done;
      (* idle lanes fire nothing *)
      let bp = Ir_vm_batch.probes bvm in
      for lane = live to kk - 1 do
        if bp.Ir_vm_batch.bp_n.(lane) <> 0 then
          Alcotest.failf "model %d step %d: idle lane %d fired %d probes" model_ix step lane
            bp.Ir_vm_batch.bp_n.(lane)
      done
    done
  done

let prop_batch_matches_scalar =
  QCheck.Test.make ~name:"batched VM lanes bit-identical to scalar VM" ~count:40
    QCheck.(make Gen.(pair (int_bound 1_000_000) (int_range 1 16)))
    (fun (seed, kk) ->
      let rng = Rng.create (Int64.of_int ((seed * 2) + 1)) in
      let prog = Codegen.lower (Model_gen.generate rng) in
      check_batch_lockstep
        ~tag:(Printf.sprintf "seed %d k=%d" seed kk)
        ~kk ~steps:15 ~optimize:true rng prog;
      true)

(* qcheck property: any generator seed yields a program on which the
   three backends agree on outputs and probe sets. *)
let prop_backends_agree =
  QCheck.Test.make ~name:"vm/closure/eval agree on random programs" ~count:60
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create (Int64.of_int (seed * 2 + 1)) in
      let prog = Codegen.lower (Model_gen.generate rng) in
      check_outputs_lockstep ~tag:(Printf.sprintf "seed %d" seed) ~steps:30 rng prog;
      true)

let suites =
  [ ( "vm_diff",
      [ Alcotest.test_case "outputs match on random models" `Slow
          test_vm_outputs_match_random_models;
        Alcotest.test_case "hooks fire identically" `Slow test_vm_hooks_fire_identically;
        Alcotest.test_case "probe buffer matches closure probes" `Slow
          test_vm_probe_buffer_matches;
        Alcotest.test_case "fuzzer campaigns identical across backends" `Slow
          test_fuzzer_backend_parity;
        Alcotest.test_case "fuzzer campaigns identical across batch widths" `Slow
          test_fuzzer_batch_parity;
        Alcotest.test_case "optimizer invisible on random models" `Slow
          test_optimizer_invisible_on_random_models;
        Alcotest.test_case "optimizer invisible to hooks" `Slow test_optimizer_invisible_to_hooks;
        Alcotest.test_case "batched VM matches scalar (K=1,4,16)" `Slow test_batch_matches_scalar;
        Alcotest.test_case "batched VM matches scalar unoptimized" `Slow
          test_batch_matches_scalar_noopt;
        Alcotest.test_case "batched VM partial lanes" `Slow test_batch_partial_lanes;
        QCheck_alcotest.to_alcotest ~verbose:false prop_backends_agree;
        QCheck_alcotest.to_alcotest ~verbose:false prop_optimizer_invisible;
        QCheck_alcotest.to_alcotest ~verbose:false prop_batch_matches_scalar ] ) ]
