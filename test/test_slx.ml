(* Tests for the SLX-dialect model reader/writer. *)

open Cftcg_model

let roundtrip m =
  let s = Slx.save_string m in
  Slx.load_string s

let models : (string * (unit -> Graph.t)) list =
  [ ("arith", Fixtures.arith_model); ("feedback", Fixtures.feedback_model);
    ("chart", Fixtures.chart_model); ("logic", Fixtures.logic_model);
    ("enabled", Fixtures.enabled_model); ("triggered", Fixtures.triggered_model); ("kitchen sink", Fixtures.kitchen_sink_model) ]

let test_roundtrip_structural () =
  List.iter
    (fun (name, mk) ->
      let m = mk () in
      let m' = roundtrip m in
      Alcotest.(check string) (name ^ " name") m.Graph.model_name m'.Graph.model_name;
      Alcotest.(check int) (name ^ " blocks") (Array.length m.Graph.blocks)
        (Array.length m'.Graph.blocks);
      Alcotest.(check int) (name ^ " lines") (Array.length m.Graph.lines)
        (Array.length m'.Graph.lines);
      Alcotest.(check bool) (name ^ " exact") true (m = m'))
    models

let test_load_rejects_garbage () =
  List.iter
    (fun s ->
      match Slx.load_string s with
      | exception Slx.Load_error _ -> ()
      | _ -> Alcotest.fail ("accepted garbage: " ^ s))
    [ "";
      "<NotAModel/>";
      "<Model/>";
      {|<Model name="m"><Block id="0" type="Nonsense" name="x"/></Model>|};
      {|<Model name="m"><Block id="0" type="Inport" name="x" index="1" dtype="int99"/></Model>|};
      {|<Model name="m"><Line src="0:0" dst="1:0"/></Model>|};
      {|<Model name="m"><Block id="0" type="Constant" name="c" value="int32:zz"/></Model>|} ]

let test_load_validates_model () =
  (* structurally parseable but semantically invalid: Sum with
     unconnected input *)
  let s =
    {|<Model name="m">
        <Block id="0" type="Inport" name="u" index="1" dtype="double"/>
        <Block id="1" type="Sum" name="add" signs="++"/>
        <Line src="0:0" dst="1:0"/>
      </Model>|}
  in
  match Slx.load_string s with
  | exception Slx.Load_error msg ->
    Alcotest.(check bool) "mentions unconnected" true
      (String.split_on_char ' ' msg |> List.exists (( = ) "unconnected"))
  | _ -> Alcotest.fail "invalid model accepted"

let test_file_roundtrip () =
  let m = Fixtures.chart_model () in
  let path = Filename.temp_file "cftcg_test" ".slx.xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Slx.save_file m path;
      let m' = Slx.load_file path in
      Alcotest.(check bool) "file roundtrip" true (m = m'))

let test_chart_serialization_detail () =
  let m = Fixtures.chart_model () in
  let m' = roundtrip m in
  match (m.Graph.blocks.(1).Graph.kind, m'.Graph.blocks.(1).Graph.kind) with
  | Graph.Chart_block a, Graph.Chart_block b ->
    Alcotest.(check int) "states" (Array.length a.Chart.states) (Array.length b.Chart.states);
    Alcotest.(check int) "transitions" (Chart.transition_count a) (Chart.transition_count b);
    Alcotest.(check bool) "identical" true (a = b)
  | _ -> Alcotest.fail "chart block not at index 1"

let test_special_floats_roundtrip () =
  let b = Build.create "F" in
  let u = Build.inport b "u" Dtype.Float64 in
  let g = Build.gain b 1e-300 u in
  let g2 = Build.gain b (-0.1) g in
  Build.outport b "y" g2;
  let m = Build.finish b in
  Alcotest.(check bool) "tiny/negative gains" true (roundtrip m = m)

let suites =
  [ ( "model.slx",
      [ Alcotest.test_case "roundtrip all fixtures" `Quick test_roundtrip_structural;
        Alcotest.test_case "rejects garbage" `Quick test_load_rejects_garbage;
        Alcotest.test_case "validates semantics" `Quick test_load_validates_model;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "chart detail" `Quick test_chart_serialization_detail;
        Alcotest.test_case "special floats" `Quick test_special_floats_roundtrip ] ) ]
