(* Tests for Assertion blocks (Model Verification) and the fuzzer's
   violation oracle. *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer

(* The invariant "output never exceeds 100" breaks when both inputs
   are large: sat(u1, 0, 60) + sat(u2, 0, 60) <= 100 is violable. *)
let violable_model () =
  let b = B.create "Violable" in
  let u1 = B.inport b "u1" Dtype.Int16 in
  let u2 = B.inport b "u2" Dtype.Int16 in
  let s1 = B.saturation b ~lower:0. ~upper:60. u1 in
  let s2 = B.saturation b ~lower:0. ~upper:60. u2 in
  let total = B.sum b [ s1; s2 ] in
  let ok = B.compare_const b Graph.R_le 100.0 total in
  B.assertion b ~name:"TotalBound" "total power exceeds 100" ok;
  B.outport b "y" total;
  B.finish b

(* sat(u, -5, 5) is always within [-10, 10]: the assertion holds. *)
let safe_model () =
  let b = B.create "Safe" in
  let u = B.inport b "u" Dtype.Int16 in
  let s = B.saturation b ~lower:(-5.) ~upper:5. u in
  let ok =
    B.and_ b
      (B.compare_const b Graph.R_le 10.0 s)
      (B.compare_const b Graph.R_ge (-10.0) s)
  in
  B.assertion b "saturation escaped its bounds" ok;
  B.outport b "y" s;
  B.finish b

let test_assertion_metadata () =
  let prog = Codegen.lower (violable_model ()) in
  Alcotest.(check int) "one assertion" 1 (Array.length prog.Cftcg_ir.Ir.assertions);
  let _, msg = prog.Cftcg_ir.Ir.assertions.(0) in
  Alcotest.(check string) "message" "TotalBound: total power exceeds 100" msg

let test_assertion_in_plain_mode () =
  (* assertions are runtime checks: present even without coverage
     instrumentation *)
  let prog = Codegen.lower ~mode:Codegen.Plain (violable_model ()) in
  Alcotest.(check int) "assertion survives plain mode" 1
    (Array.length prog.Cftcg_ir.Ir.assertions);
  Alcotest.(check int) "only the assertion cell" 1 prog.Cftcg_ir.Ir.n_probes

let test_fuzzer_finds_violation () =
  let prog = Codegen.lower (violable_model ()) in
  let r =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 3L } prog
      (Fuzzer.Exec_budget 20_000)
  in
  match r.Fuzzer.failures with
  | [] -> Alcotest.fail "violation not found"
  | f :: _ ->
    Alcotest.(check string) "message" "TotalBound: total power exceeds 100" f.Fuzzer.f_message;
    (* replay the failing input and confirm the violation *)
    let layout = Cftcg_fuzz.Layout.of_program prog in
    let c = Cftcg_ir.Ir_compile.compile prog in
    Cftcg_ir.Ir_compile.reset c;
    let violated = ref false in
    for tuple = 0 to Cftcg_fuzz.Layout.n_tuples layout f.Fuzzer.f_data - 1 do
      Cftcg_fuzz.Layout.load_tuple layout f.Fuzzer.f_data ~tuple c;
      Cftcg_ir.Ir_compile.step c;
      if Value.to_float (Cftcg_ir.Ir_compile.get_output c 0) > 100.0 then violated := true
    done;
    Alcotest.(check bool) "failing input reproduces" true !violated

let test_safe_model_has_no_failures () =
  let prog = Codegen.lower (safe_model ()) in
  let r =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 4L } prog
      (Fuzzer.Exec_budget 20_000)
  in
  Alcotest.(check int) "no failures" 0 (List.length r.Fuzzer.failures)

let test_each_assertion_reported_once () =
  let prog = Codegen.lower (violable_model ()) in
  let r =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 5L } prog
      (Fuzzer.Exec_budget 50_000)
  in
  Alcotest.(check bool) "at most one failure per assertion" true
    (List.length r.Fuzzer.failures <= 1)

let test_slx_roundtrip_assertion () =
  let m = violable_model () in
  let m' = Slx.load_string (Slx.save_string m) in
  Alcotest.(check bool) "roundtrip" true (m = m')

let test_optimizer_preserves_assertions () =
  let prog = Codegen.lower (violable_model ()) in
  let opt = Cftcg_ir.Ir_opt.optimize prog in
  Alcotest.(check int) "assertion kept" 1 (Array.length opt.Cftcg_ir.Ir.assertions);
  (* the assertion's If must survive optimization *)
  let rec count_probes stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | Cftcg_ir.Ir.Probe _ -> acc + 1
        | Cftcg_ir.Ir.If { then_; else_; _ } -> acc + count_probes then_ + count_probes else_
        | _ -> acc)
      0 stmts
  in
  Alcotest.(check bool) "assertion probe survives" true (count_probes opt.Cftcg_ir.Ir.step >= 1)

let suites =
  [ ( "model.assertions",
      [ Alcotest.test_case "metadata" `Quick test_assertion_metadata;
        Alcotest.test_case "present in plain mode" `Quick test_assertion_in_plain_mode;
        Alcotest.test_case "fuzzer finds violation" `Quick test_fuzzer_finds_violation;
        Alcotest.test_case "safe model clean" `Quick test_safe_model_has_no_failures;
        Alcotest.test_case "reported once" `Quick test_each_assertion_reported_once;
        Alcotest.test_case "slx roundtrip" `Quick test_slx_roundtrip_assertion;
        Alcotest.test_case "survives optimizer" `Quick test_optimizer_preserves_assertions ] ) ]
