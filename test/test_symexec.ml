(* Tests for guard-chain analysis and the SLDV-substitute generator. *)

open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Guards = Cftcg_symexec.Guards
module Symexec = Cftcg_symexec.Symexec
module Recorder = Cftcg_coverage.Recorder

let test_guard_chains_shape () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let chains = Guards.probe_chains prog in
  Alcotest.(check int) "chain per probe" prog.Cftcg_ir.Ir.n_probes (Array.length chains);
  (* every decision-outcome probe sits under at least one If *)
  Array.iter
    (fun (d : Cftcg_ir.Ir.decision) ->
      Array.iter
        (fun p ->
          Alcotest.(check bool) "outcome probe is guarded" true (List.length chains.(p) >= 1))
        d.Cftcg_ir.Ir.outcome_probes)
    prog.Cftcg_ir.Ir.decisions

let test_guard_chain_polarity () =
  (* for a 2-outcome decision, outcome 0 and outcome 1 probes differ
     in the last chain entry's polarity *)
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let chains = Guards.probe_chains prog in
  Array.iter
    (fun (d : Cftcg_ir.Ir.decision) ->
      if d.Cftcg_ir.Ir.n_outcomes = 2 then begin
        let c0 = List.rev chains.(d.Cftcg_ir.Ir.outcome_probes.(0)) in
        let c1 = List.rev chains.(d.Cftcg_ir.Ir.outcome_probes.(1)) in
        match (c0, c1) with
        | (i0, p0) :: _, (i1, p1) :: _ ->
          Alcotest.(check int) "same innermost if" i0 i1;
          Alcotest.(check bool) "opposite polarity" true (p0 <> p1)
        | _ -> Alcotest.fail "missing chains"
      end)
    prog.Cftcg_ir.Ir.decisions

let test_n_ifs_positive () =
  let prog = Codegen.lower (Fixtures.arith_model ()) in
  Alcotest.(check bool) "has ifs" true (Guards.n_ifs prog > 0)

let test_solver_covers_combinational_model () =
  (* the arith fixture is shallow: the solver should clear it fast *)
  let prog = Codegen.lower (Fixtures.arith_model ()) in
  let r = Symexec.run_timed ~config:{ Symexec.default_config with Symexec.seed = 11L } prog ~time_budget:5.0 in
  let suite = List.map (fun (tc : Symexec.test_case) -> tc.Symexec.data) r.Symexec.suite in
  let report = Cftcg.Evaluate.replay prog suite in
  Alcotest.(check bool)
    (Printf.sprintf "high decision coverage (%.0f%%)" report.Recorder.decision_pct)
    true
    (report.Recorder.decision_pct >= 90.0)

let test_solver_finds_exact_equality () =
  (* branch needs u == 12345: hopeless for pure random, easy for
     branch-distance descent *)
  let b = Build.create "Exact" in
  let u = Build.inport b "u" Dtype.Int32 in
  let hit = Build.compare_const b Graph.R_eq 12345.0 u in
  Build.outport b "y" hit;
  let prog = Codegen.lower (Build.finish b) in
  let r = Symexec.run_timed ~config:{ Symexec.default_config with Symexec.seed = 1L } prog ~time_budget:10.0 in
  let suite = List.map (fun (tc : Symexec.test_case) -> tc.Symexec.data) r.Symexec.suite in
  let report = Cftcg.Evaluate.replay prog suite in
  Alcotest.(check (float 0.01)) "both outcomes found" 100.0 report.Recorder.decision_pct

let test_solver_degrades_on_deep_state () =
  (* a branch that needs >= 40 consecutive enables exceeds the
     unrolling bounds: SLDV-like failure mode *)
  let b = Build.create "DeepCounter" in
  let en = Build.inport b "en" Dtype.Bool in
  let cnt = Build.counter b 100 en in
  let deep = Build.compare_const b Graph.R_ge 40.0 cnt in
  Build.outport b "y" deep;
  let prog = Codegen.lower (Build.finish b) in
  let config = { Symexec.default_config with Symexec.seed = 2L; Symexec.unroll_bounds = [ 1; 2; 4; 8 ] } in
  let r = Symexec.run_timed ~config prog ~time_budget:3.0 in
  let suite = List.map (fun (tc : Symexec.test_case) -> tc.Symexec.data) r.Symexec.suite in
  let report = Cftcg.Evaluate.replay prog suite in
  Alcotest.(check bool) "deep branch unreached" true (report.Recorder.decision_pct < 100.0)

let test_suite_timestamps_monotone () =
  let prog = Codegen.lower (Fixtures.arith_model ()) in
  let r = Symexec.run_timed prog ~time_budget:2.0 in
  let rec monotone = function
    | (a : Symexec.test_case) :: (b :: _ as rest) ->
      a.Symexec.time <= b.Symexec.time && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (monotone r.Symexec.suite)

(* --- Exec-budget mode (the hybrid campaign's solver clock) --- *)

let test_exec_budget_deterministic () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let run () =
    Symexec.run ~config:{ Symexec.default_config with Symexec.seed = 7L } prog
      (Symexec.Exec_budget 3_000)
  in
  let r1 = run () and r2 = run () in
  (* byte-identical INCLUDING suite data and timestamps: exec-budget
     runs read the virtual clock (execution index), never wall time *)
  Alcotest.(check bool) "identical results incl. suite and times" true (r1 = r2);
  Alcotest.(check bool) "budget respected" true (r1.Symexec.executions <= 3_000);
  List.iter
    (fun (tc : Symexec.test_case) ->
      Alcotest.(check bool) "timestamps are execution indices" true
        (Float.is_integer tc.Symexec.time && tc.Symexec.time >= 0.0))
    r1.Symexec.suite

let test_full_initial_coverage_short_circuits () =
  (* everything already covered: every target counts as solved and the
     solver never runs an execution *)
  let prog = Codegen.lower (Fixtures.arith_model ()) in
  let g = Bytes.make (max prog.Cftcg_ir.Ir.n_probes 1) '\001' in
  let r = Symexec.run ~initial_coverage:g prog (Symexec.Exec_budget 1_000) in
  Alcotest.(check int) "every target solved" r.Symexec.targets_total r.Symexec.targets_solved;
  Alcotest.(check int) "no executions spent" 0 r.Symexec.executions

let test_solved_count_consistency () =
  (* a solved target is a covered probe, so the counters can never
     disagree in that direction — the mid-escalation guard used to stop
     the search on a covered target without crediting it *)
  List.iter
    (fun seed ->
      let prog = Codegen.lower (Fixtures.logic_model ()) in
      let r =
        Symexec.run ~config:{ Symexec.default_config with Symexec.seed } prog
          (Symexec.Exec_budget 2_000)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: solved (%d) <= covered (%d)" seed r.Symexec.targets_solved
           r.Symexec.probes_covered)
        true
        (r.Symexec.targets_solved <= r.Symexec.probes_covered);
      Alcotest.(check bool) "solved bounded by total" true
        (r.Symexec.targets_solved <= r.Symexec.targets_total))
    [ 1L; 2L; 3L; 4L; 5L ]

let suites =
  [ ( "symexec.guards",
      [ Alcotest.test_case "chain per probe" `Quick test_guard_chains_shape;
        Alcotest.test_case "polarity split" `Quick test_guard_chain_polarity;
        Alcotest.test_case "if count" `Quick test_n_ifs_positive ] );
    ( "symexec.solver",
      [ Alcotest.test_case "covers combinational" `Slow test_solver_covers_combinational_model;
        Alcotest.test_case "finds exact equality" `Slow test_solver_finds_exact_equality;
        Alcotest.test_case "degrades on deep state" `Slow test_solver_degrades_on_deep_state;
        Alcotest.test_case "timestamps monotone" `Quick test_suite_timestamps_monotone;
        Alcotest.test_case "exec-budget runs are deterministic" `Quick
          test_exec_budget_deterministic;
        Alcotest.test_case "full initial coverage short-circuits" `Quick
          test_full_initial_coverage_short_circuits;
        Alcotest.test_case "solved count consistent with coverage" `Quick
          test_solved_count_consistency ] ) ]
