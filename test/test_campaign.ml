(* Tests for the parallel ensemble campaign orchestrator: corpus
   store persistence/resume, telemetry sinks, multi-worker scaling vs
   a single worker, exec-budget determinism, and the hardened CSV
   importer. *)

open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Campaign = Cftcg_campaign.Campaign
module Corpus_store = Cftcg_campaign.Corpus_store
module Telemetry = Cftcg_campaign.Telemetry
module Testcase = Cftcg_testcase.Testcase
module Models = Cftcg_bench_models.Bench_models

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  dir

let solar_pv () =
  let e = Option.get (Models.find "SolarPV") in
  Codegen.lower ~mode:Codegen.Full (Lazy.force e.Models.model)

(* --- Corpus_store --- *)

let test_store_add_dedup () =
  let dir = fresh_dir "cftcg_store_add" in
  let s = Corpus_store.open_ dir in
  Alcotest.(check int) "empty" 0 (Corpus_store.size s);
  let a = Bytes.of_string "aaaa" and b = Bytes.of_string "bb" in
  (match Corpus_store.add s ~fingerprint:"f1" ~metric:10 a with
  | `Added -> ()
  | _ -> Alcotest.fail "first add");
  (* same fingerprint, worse metric: the old representative stays *)
  (match Corpus_store.add s ~fingerprint:"f1" ~metric:5 b with
  | `Kept -> ()
  | _ -> Alcotest.fail "worse metric must be kept out");
  Alcotest.(check (list bytes)) "old entry" [ a ] (Corpus_store.entries s);
  (* same fingerprint, better metric: replaced *)
  (match Corpus_store.add s ~fingerprint:"f1" ~metric:20 b with
  | `Replaced -> ()
  | _ -> Alcotest.fail "better metric must replace");
  ignore (Corpus_store.add s ~fingerprint:"f0" ~metric:1 a);
  Alcotest.(check int) "two fingerprints" 2 (Corpus_store.size s);
  Alcotest.(check (list string)) "sorted" [ "f0"; "f1" ] (Corpus_store.fingerprints s);
  Alcotest.(check (list bytes)) "entries in fp order" [ a; b ] (Corpus_store.entries s);
  rm_rf dir

let test_store_manifest_roundtrip () =
  let dir = fresh_dir "cftcg_store_manifest" in
  let s = Corpus_store.open_ dir in
  ignore (Corpus_store.add s ~fingerprint:"ff01" ~metric:7 (Bytes.of_string "x"));
  let m =
    { Corpus_store.m_seed = -42L; m_jobs = 4; m_epoch = 3; m_executions = 123456;
      m_probes_total = 16; m_coverage = Bytes.of_string "\001\000\001" }
  in
  Corpus_store.save_manifest s m;
  let s2 = Corpus_store.open_ dir in
  (match Corpus_store.load_manifest s2 with
  | Some got ->
    Alcotest.(check int64) "seed" m.Corpus_store.m_seed got.Corpus_store.m_seed;
    Alcotest.(check int) "jobs" 4 got.Corpus_store.m_jobs;
    Alcotest.(check int) "epoch" 3 got.Corpus_store.m_epoch;
    Alcotest.(check int) "executions" 123456 got.Corpus_store.m_executions;
    Alcotest.(check int) "probes_total" 16 got.Corpus_store.m_probes_total;
    Alcotest.(check bytes) "coverage" m.Corpus_store.m_coverage got.Corpus_store.m_coverage
  | None -> Alcotest.fail "manifest not reloaded");
  (* the entry index (metric) survives the round-trip *)
  (match Corpus_store.add s2 ~fingerprint:"ff01" ~metric:6 (Bytes.of_string "y") with
  | `Kept -> ()
  | _ -> Alcotest.fail "metric lost across reopen");
  rm_rf dir

let test_store_recovers_unmanifested_entries () =
  (* entries written after the last manifest save (killed campaign)
     are still found on reopen *)
  let dir = fresh_dir "cftcg_store_recover" in
  let s = Corpus_store.open_ dir in
  ignore (Corpus_store.add s ~fingerprint:"abcd" ~metric:9 (Bytes.of_string "data"));
  let s2 = Corpus_store.open_ dir in
  Alcotest.(check int) "recovered" 1 (Corpus_store.size s2);
  Alcotest.(check bool) "mem" true (Corpus_store.mem s2 "abcd");
  rm_rf dir

let test_store_merge () =
  let da = fresh_dir "cftcg_store_merge_a" and db = fresh_dir "cftcg_store_merge_b" in
  let a = Corpus_store.open_ da and b = Corpus_store.open_ db in
  ignore (Corpus_store.add a ~fingerprint:"f1" ~metric:1 (Bytes.of_string "a1"));
  ignore (Corpus_store.add b ~fingerprint:"f1" ~metric:9 (Bytes.of_string "b1"));
  ignore (Corpus_store.add b ~fingerprint:"f2" ~metric:2 (Bytes.of_string "b2"));
  (* persist b's metric index: merge reopens [from] dirs from disk, and
     unmanifested entries are recovered at metric 0 *)
  Corpus_store.save_manifest b
    { Corpus_store.m_seed = 0L; m_jobs = 1; m_epoch = 0; m_executions = 0;
      m_probes_total = 0; m_coverage = Bytes.empty };
  let changed = Corpus_store.merge a ~from:[ db ] in
  Alcotest.(check int) "f1 replaced + f2 added" 2 changed;
  Alcotest.(check (list bytes)) "merged entries"
    [ Bytes.of_string "b1"; Bytes.of_string "b2" ]
    (Corpus_store.entries a);
  rm_rf da;
  rm_rf db

(* --- Telemetry --- *)

let some_events =
  [ Telemetry.Exec_batch { worker = 0; epoch = 0; executions = 512; iterations = 900; probes_covered = 10 };
    Telemetry.New_probe { worker = 1; epoch = 0; probes = 3; executions = 17 };
    Telemetry.Corpus_sync { epoch = 0; candidates = 12; kept = 7; probes_covered = 13 };
    Telemetry.Epoch_end { epoch = 0; executions = 2048; probes_covered = 13; probes_total = 20; corpus_size = 7 };
    Telemetry.Plateau { epoch = 4; stalled_epochs = 3 };
    Telemetry.Failure { worker = 2; epoch = 1; message = "overflow \"u\"\n" } ]

let test_telemetry_ring () =
  let sink, contents = Telemetry.ring ~capacity:4 () in
  List.iter sink.Telemetry.emit some_events;
  sink.Telemetry.close ();
  let got = contents () in
  (* capacity 4: the two oldest of the six events are overwritten *)
  Alcotest.(check int) "ring keeps latest" 4 (List.length got);
  Alcotest.(check bool) "oldest first" true
    (List.nth got 0 = Telemetry.Corpus_sync { epoch = 0; candidates = 12; kept = 7; probes_covered = 13 })

let test_telemetry_json () =
  let js = List.map (Telemetry.to_json ?seq:None) some_events in
  List.iter
    (fun j ->
      Alcotest.(check bool) ("object: " ^ j) true
        (String.length j > 1 && j.[0] = '{' && j.[String.length j - 1] = '}');
      Alcotest.(check bool) ("typed: " ^ j) true (contains "\"type\":" j))
    js;
  (* escaping: the failure message has a quote and a newline *)
  let failure_json = List.nth js 5 in
  Alcotest.(check bool) "escapes quotes" true (contains "overflow \\\"u\\\"\\n" failure_json);
  Alcotest.(check bool) "no raw newline" true (not (String.contains failure_json '\n'))

let test_telemetry_jsonl_file () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_test_events.jsonl" in
  let sink = Telemetry.jsonl path in
  List.iter sink.Telemetry.emit some_events;
  sink.Telemetry.close ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per event" (List.length some_events) (List.length lines);
  List.iteri
    (fun i line ->
      Alcotest.(check bool) "seq stamped" true (contains (Printf.sprintf "\"seq\":%d" i) line))
    lines;
  Sys.remove path

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

let test_telemetry_jsonl_append () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_test_append.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  (* first run: 6 events, seq 0..5 *)
  let sink = Telemetry.jsonl path in
  List.iter sink.Telemetry.emit some_events;
  sink.Telemetry.close ();
  (* resumed run appends and continues the seq counter *)
  let sink = Telemetry.jsonl ~append:true path in
  List.iter sink.Telemetry.emit some_events;
  sink.Telemetry.close ();
  let lines = read_lines path in
  Alcotest.(check int) "appended" (2 * List.length some_events) (List.length lines);
  List.iteri
    (fun i line ->
      Alcotest.(check bool)
        (Printf.sprintf "seq %d continues" i)
        true
        (contains (Printf.sprintf "\"seq\":%d" i) line))
    lines;
  (* fresh (non-append) run truncates back to one event set *)
  let sink = Telemetry.jsonl path in
  List.iter sink.Telemetry.emit some_events;
  sink.Telemetry.close ();
  let lines = read_lines path in
  Alcotest.(check int) "truncated" (List.length some_events) (List.length lines);
  Alcotest.(check bool) "seq restarts" true (contains "\"seq\":0" (List.nth lines 0));
  (* append to a path that does not exist yet: starts at seq 0 *)
  Sys.remove path;
  let sink = Telemetry.jsonl ~append:true path in
  sink.Telemetry.emit (List.hd some_events);
  sink.Telemetry.close ();
  Alcotest.(check bool) "append creates" true (contains "\"seq\":0" (List.hd (read_lines path)));
  Sys.remove path

let test_telemetry_jsonl_durable_close () =
  (* close flushes and fsyncs: every emitted line must be readable
     from a fresh descriptor the instant close returns, with no
     buffered tail *)
  let path = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_test_durable.jsonl" in
  let sink = Telemetry.jsonl path in
  for _ = 1 to 500 do
    List.iter sink.Telemetry.emit some_events
  done;
  sink.Telemetry.close ();
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  Unix.close fd;
  let lines = read_lines path in
  Alcotest.(check int) "all lines on disk" (500 * List.length some_events) (List.length lines);
  Alcotest.(check bool) "last line complete" true
    (contains (Printf.sprintf "\"seq\":%d" ((500 * List.length some_events) - 1))
       (List.nth lines ((500 * List.length some_events) - 1)));
  Alcotest.(check bool) "nothing buffered" true (size > 0);
  Sys.remove path

let test_telemetry_close_idempotent () =
  (* closing any constructed sink twice must be a no-op, not a crash
     (jsonl's second close would otherwise close_out a closed channel) *)
  let path = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_test_close.jsonl" in
  let sink = Telemetry.jsonl path in
  sink.Telemetry.emit (List.hd some_events);
  sink.Telemetry.close ();
  sink.Telemetry.close ();
  Sys.remove path;
  let ring, _ = Telemetry.ring () in
  ring.Telemetry.close ();
  ring.Telemetry.close ();
  let m = Telemetry.multi [ Telemetry.null ] in
  m.Telemetry.close ();
  m.Telemetry.close ()

let test_telemetry_multi_close_exception_safe () =
  let closed = Array.make 3 false in
  let plain ix = { Telemetry.emit = (fun _ -> ()); close = (fun () -> closed.(ix) <- true) } in
  let failing ix =
    { Telemetry.emit = (fun _ -> ());
      close =
        (fun () ->
          closed.(ix) <- true;
          failwith "sink close failed")
    }
  in
  let m = Telemetry.multi [ plain 0; failing 1; plain 2 ] in
  (match m.Telemetry.close () with
  | exception Failure msg -> Alcotest.(check string) "first error re-raised" "sink close failed" msg
  | () -> Alcotest.fail "close must re-raise the sink failure");
  Alcotest.(check (array bool)) "every sink closed" [| true; true; true |] closed;
  (* idempotent even after a failing close: nothing runs again *)
  Array.fill closed 0 3 false;
  m.Telemetry.close ();
  Alcotest.(check (array bool)) "second close is a no-op" [| false; false; false |] closed

(* snapshot of the progress renderer's terminal protocol: heartbeats
   overwrite one line (\r, no newline), epoch ends and failures commit
   it with a newline, and close commits a dangling heartbeat line *)
let progress_output events =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_test_progress.txt" in
  let oc = open_out path in
  let sink = Telemetry.progress oc in
  List.iter sink.Telemetry.emit events;
  sink.Telemetry.close ();
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  s

let pad78 s = Printf.sprintf "\r%-78s" s

let test_telemetry_progress_snapshot () =
  let hb n =
    Telemetry.Exec_batch { worker = 1; epoch = 0; executions = n; iterations = 2 * n; probes_covered = 7 }
  in
  (* two heartbeats: the second overwrites the first, close commits *)
  Alcotest.(check string) "heartbeat overwrite"
    (pad78 "  worker 1: 512 execs, 7 probes covered"
    ^ pad78 "  worker 1: 1024 execs, 7 probes covered"
    ^ "\n")
    (progress_output [ hb 512; hb 1024 ]);
  (* epoch end commits the line: no dangling line for close to finish *)
  Alcotest.(check string) "epoch commit"
    (pad78 "  worker 1: 512 execs, 7 probes covered"
    ^ pad78 "  epoch 3: 4096 execs, 9/20 probes, corpus 5"
    ^ "\n")
    (progress_output
       [ hb 512;
         Telemetry.Epoch_end
           { epoch = 3; executions = 4096; probes_covered = 9; probes_total = 20; corpus_size = 5 }
       ]);
  (* a failure commits its own line even mid-heartbeat *)
  Alcotest.(check string) "failure commit"
    (pad78 "  worker 1: 512 execs, 7 probes covered"
    ^ pad78 "  FAILURE (worker 2): assert blew up"
    ^ "\n"
    ^ pad78 "  worker 1: 1024 execs, 7 probes covered"
    ^ "\n")
    (progress_output
       [ hb 512;
         Telemetry.Failure { worker = 2; epoch = 0; message = "assert blew up" };
         hb 1024
       ]);
  (* silent events leave no output at all *)
  Alcotest.(check string) "silent events" ""
    (progress_output
       [ Telemetry.New_probe { worker = 0; epoch = 0; probes = 1; executions = 3 };
         Telemetry.Corpus_sync { epoch = 0; candidates = 1; kept = 1; probes_covered = 1 }
       ])

(* --- Fuzzer determinism under Exec_budget (virtual clock) --- *)

let test_exec_budget_deterministic () =
  let prog = solar_pv () in
  let run () =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 21L } prog
      (Fuzzer.Exec_budget 2000)
  in
  let r1 = run () and r2 = run () in
  (* byte-identical results INCLUDING timestamps and stats: exec-budget
     runs read the virtual clock (execution index), never wall time *)
  Alcotest.(check bool) "identical results incl. stats" true (r1 = r2);
  Alcotest.(check (float 0.0)) "elapsed is the virtual clock"
    (float_of_int r1.Fuzzer.stats.Fuzzer.executions)
    r1.Fuzzer.stats.Fuzzer.elapsed;
  List.iter
    (fun (tc : Fuzzer.test_case) ->
      Alcotest.(check bool) "timestamps are execution indices" true
        (Float.is_integer tc.Fuzzer.tc_time && tc.Fuzzer.tc_time >= 0.0))
    r1.Fuzzer.test_suite

(* --- Campaign --- *)

let test_campaign_rejects_bad_config () =
  let prog = solar_pv () in
  (match Campaign.run ~config:{ Campaign.default_config with Campaign.jobs = 0 } prog with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted jobs = 0");
  let b = Build.create "NoInputs" in
  Build.outport b "y" (Build.const_f b 1.0);
  let closed = Codegen.lower (Build.finish b) in
  match Campaign.run closed with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a model without inports"

let test_campaign_deterministic () =
  let prog = solar_pv () in
  let config =
    { Campaign.default_config with
      Campaign.jobs = 3;
      seed = 5L;
      total_execs = 900;
      execs_per_epoch = 100;
      stop_on_full = false;
      plateau_epochs = max_int
    }
  in
  let r1 = Campaign.run ~config prog and r2 = Campaign.run ~config prog in
  Alcotest.(check int) "same coverage" r1.Campaign.probes_covered r2.Campaign.probes_covered;
  Alcotest.(check int) "same executions" r1.Campaign.executions r2.Campaign.executions;
  Alcotest.(check (list bytes)) "same merged corpus" r1.Campaign.suite r2.Campaign.suite;
  Alcotest.(check bool) "same history" true (r1.Campaign.epochs = r2.Campaign.epochs)

(* Acceptance: a 4-worker ensemble with the same total execution
   budget reaches at least the coverage of a single worker. *)
let test_campaign_parallel_vs_single () =
  let prog = solar_pv () in
  let run jobs =
    Campaign.run
      ~config:
        { Campaign.default_config with
          Campaign.jobs;
          seed = 3L;
          total_execs = 12_000;
          execs_per_epoch = 1_000
        }
      prog
  in
  let single = run 1 and ensemble = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "ensemble coverage (%d) >= single (%d)" ensemble.Campaign.probes_covered
       single.Campaign.probes_covered)
    true
    (ensemble.Campaign.probes_covered >= single.Campaign.probes_covered);
  Alcotest.(check bool) "ensemble merged corpus nonempty" true (ensemble.Campaign.suite <> []);
  (* epoch history is cumulative and monotone *)
  let rec monotone = function
    | (a : Campaign.epoch_stat) :: (b :: _ as rest) ->
      a.Campaign.ep_probes_covered <= b.Campaign.ep_probes_covered
      && a.Campaign.ep_executions < b.Campaign.ep_executions
      && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone history" true (monotone ensemble.Campaign.epochs)

(* Acceptance: kill/resume. A campaign interrupted after one epoch
   persists its corpus + manifest; a resumed campaign starts from the
   persisted state and never loses coverage. *)
let test_campaign_kill_and_resume () =
  let prog = solar_pv () in
  let dir = fresh_dir "cftcg_campaign_resume" in
  let base =
    { Campaign.default_config with
      Campaign.jobs = 2;
      seed = 9L;
      execs_per_epoch = 100;
      corpus_dir = Some dir
    }
  in
  (* "kill" after exactly one epoch by capping max_epochs *)
  let interrupted =
    Campaign.run ~config:{ base with Campaign.total_execs = 10_000; max_epochs = 1 } prog
  in
  let cov_at_interrupt = interrupted.Campaign.probes_covered in
  Alcotest.(check bool) "interrupted mid-campaign" true
    (cov_at_interrupt > 0 && cov_at_interrupt < interrupted.Campaign.probes_total);
  let store = Corpus_store.open_ dir in
  (match Corpus_store.load_manifest store with
  | Some m ->
    Alcotest.(check int) "manifest epoch" 1 m.Corpus_store.m_epoch;
    Alcotest.(check int) "manifest executions" interrupted.Campaign.executions
      m.Corpus_store.m_executions
  | None -> Alcotest.fail "no manifest persisted");
  Alcotest.(check bool) "entries persisted" true (Corpus_store.size store > 0);
  (* resume with the remaining budget *)
  let resumed =
    Campaign.run ~config:{ base with Campaign.total_execs = 8_000; resume = true } prog
  in
  Alcotest.(check bool) "flagged as resumed" true resumed.Campaign.resumed;
  Alcotest.(check bool)
    (Printf.sprintf "coverage after resume (%d) >= at interrupt (%d)"
       resumed.Campaign.probes_covered cov_at_interrupt)
    true
    (resumed.Campaign.probes_covered >= cov_at_interrupt);
  Alcotest.(check bool) "executions accumulate" true
    (resumed.Campaign.executions > interrupted.Campaign.executions);
  (match resumed.Campaign.epochs with
  | first :: _ ->
    Alcotest.(check int) "epoch numbering continues" 1 first.Campaign.ep_epoch
  | [] -> Alcotest.fail "resumed campaign ran no epochs");
  (* resume against a different program is refused *)
  let other = Codegen.lower (Fixtures.arith_model ()) in
  (match
     Campaign.run ~config:{ base with Campaign.resume = true } other
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "resumed a corpus recorded for a different program");
  rm_rf dir

let test_campaign_telemetry_stream () =
  let prog = solar_pv () in
  let sink, contents = Telemetry.ring () in
  let r =
    Campaign.run
      ~config:
        { Campaign.default_config with
          Campaign.jobs = 2;
          seed = 4L;
          total_execs = 3_000;
          execs_per_epoch = 500;
          sink
        }
      prog
  in
  let events = contents () in
  let count p = List.length (List.filter p events) in
  Alcotest.(check int) "one epoch_end per epoch"
    (List.length r.Campaign.epochs)
    (count (function Telemetry.Epoch_end _ -> true | _ -> false));
  Alcotest.(check int) "one corpus_sync per epoch"
    (List.length r.Campaign.epochs)
    (count (function Telemetry.Corpus_sync _ -> true | _ -> false));
  Alcotest.(check bool) "new probes reported" true
    (count (function Telemetry.New_probe _ -> true | _ -> false) > 0);
  (* the last epoch_end agrees with the result *)
  let last_end =
    List.fold_left
      (fun acc e -> match e with Telemetry.Epoch_end _ -> Some e | _ -> acc)
      None events
  in
  match last_end with
  | Some (Telemetry.Epoch_end { probes_covered; executions; _ }) ->
    Alcotest.(check int) "final coverage reported" r.Campaign.probes_covered probes_covered;
    Alcotest.(check int) "final executions reported" r.Campaign.executions executions
  | _ -> Alcotest.fail "no epoch_end event"

(* --- hardened CSV import --- *)

let test_csv_rejects_non_finite () =
  let layout = Layout.of_inports [| ("i", Dtype.Int8); ("f", Dtype.Float64) |] in
  List.iter
    (fun (csv, needle) ->
      match Testcase.of_csv layout csv with
      | exception Testcase.Parse_error msg ->
        Alcotest.(check bool) (Printf.sprintf "%S in %S" needle msg) true (contains needle msg)
      | _ -> Alcotest.fail ("accepted " ^ csv))
    [ ("step,i,f\n0,1,nan", "non-finite");
      ("step,i,f\n0,1,inf", "non-finite");
      ("step,i,f\n0,1,-infinity", "non-finite");
      (* an integer field fed a float-formatted NaN must not coerce *)
      ("step,i,f\n0,nan,1.0", "non-finite") ]

let test_csv_rejects_truncated_row () =
  let layout = Layout.of_inports [| ("i", Dtype.Int8); ("f", Dtype.Float64) |] in
  match Testcase.of_csv layout "step,i,f\n0,1,2.0\n1,1" with
  | exception Testcase.Parse_error msg ->
    Alcotest.(check bool) ("truncated in " ^ msg) true (contains "truncated" msg)
  | _ -> Alcotest.fail "accepted a truncated row"

let suites =
  [ ( "campaign.corpus_store",
      [ Alcotest.test_case "add dedup by fingerprint" `Quick test_store_add_dedup;
        Alcotest.test_case "manifest roundtrip" `Quick test_store_manifest_roundtrip;
        Alcotest.test_case "recovers unmanifested entries" `Quick
          test_store_recovers_unmanifested_entries;
        Alcotest.test_case "merge directories" `Quick test_store_merge ] );
    ( "campaign.telemetry",
      [ Alcotest.test_case "ring buffer" `Quick test_telemetry_ring;
        Alcotest.test_case "json encoding" `Quick test_telemetry_json;
        Alcotest.test_case "jsonl file" `Quick test_telemetry_jsonl_file;
        Alcotest.test_case "jsonl append on resume" `Quick test_telemetry_jsonl_append;
        Alcotest.test_case "jsonl durable close" `Quick test_telemetry_jsonl_durable_close;
        Alcotest.test_case "close is idempotent" `Quick test_telemetry_close_idempotent;
        Alcotest.test_case "multi close is exception-safe" `Quick
          test_telemetry_multi_close_exception_safe;
        Alcotest.test_case "progress line snapshot" `Quick test_telemetry_progress_snapshot ] );
    ( "campaign.orchestrator",
      [ Alcotest.test_case "exec-budget runs are deterministic" `Quick
          test_exec_budget_deterministic;
        Alcotest.test_case "rejects bad config" `Quick test_campaign_rejects_bad_config;
        Alcotest.test_case "campaign is deterministic" `Slow test_campaign_deterministic;
        Alcotest.test_case "parallel >= single coverage" `Slow test_campaign_parallel_vs_single;
        Alcotest.test_case "kill and resume" `Slow test_campaign_kill_and_resume;
        Alcotest.test_case "telemetry stream" `Slow test_campaign_telemetry_stream ] );
    ( "testcase.hardening",
      [ Alcotest.test_case "rejects NaN/Inf" `Quick test_csv_rejects_non_finite;
        Alcotest.test_case "rejects truncated rows" `Quick test_csv_rejects_truncated_row ] ) ]
