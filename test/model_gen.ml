(* Random model generator for toolchain self-testing.

   Builds arbitrary well-formed block diagrams over the public
   builder: random inports, a layered DAG of random blocks (every
   family except subsystems), random parameters, and outports over
   the frontier signals. Used by the differential property tests to
   check compiled execution, the reference evaluator, the graph
   interpreter, and the optimizer against each other on inputs no
   human would write. *)

open Cftcg_model
module B = Build
module Rng = Cftcg_util.Rng

let random_dtype rng =
  Rng.choose rng
    [| Dtype.Bool; Dtype.Int8; Dtype.UInt8; Dtype.Int16; Dtype.UInt16; Dtype.Int32; Dtype.Float64 |]

let small_float rng = Rng.float rng 40.0 -. 20.0

let random_relop rng =
  Rng.choose rng [| Graph.R_eq; Graph.R_ne; Graph.R_lt; Graph.R_le; Graph.R_gt; Graph.R_ge |]

(* One random block over existing signals; returns the new signal. *)
let add_random_block rng b pool =
  let pick () = Rng.choose rng pool in
  match Rng.int rng 24 with
  | 0 ->
    let n = Rng.int_in rng 2 3 in
    let signs = String.init n (fun _ -> if Rng.bool rng then '+' else '-') in
    B.sum b ~signs (List.init n (fun _ -> pick ()))
  | 1 ->
    let n = Rng.int_in rng 2 3 in
    (* division amplifies rounding differences; multiply only *)
    B.product b ~ops:(String.make n '*') (List.init n (fun _ -> pick ()))
  | 2 -> B.gain b (small_float rng) (pick ())
  | 3 -> B.bias b (small_float rng) (pick ())
  | 4 -> B.abs_ b (pick ())
  | 5 -> B.neg b (pick ())
  | 6 -> B.sign b (pick ())
  | 7 ->
    let lo = small_float rng in
    B.saturation b ~lower:lo ~upper:(lo +. Rng.float rng 20.0) (pick ())
  | 8 ->
    let lo = small_float rng in
    B.dead_zone b ~lower:lo ~upper:(lo +. Rng.float rng 10.0) (pick ())
  | 9 ->
    let off = small_float rng in
    B.relay b ~on_point:(off +. Rng.float rng 10.0) ~off_point:off ~on_value:1. ~off_value:0.
      (pick ())
  | 10 -> B.quantizer b (0.25 +. Rng.float rng 2.0) (pick ())
  | 11 ->
    let f = Rng.float rng 5.0 +. 0.5 in
    B.rate_limiter b ~rising:f ~falling:(-.f) (pick ())
  | 12 ->
    let op = Rng.choose rng [| Graph.L_and; Graph.L_or; Graph.L_xor; Graph.L_nand; Graph.L_nor |] in
    B.logic b op [ B.compare_zero b (random_relop rng) (pick ());
                   B.compare_zero b (random_relop rng) (pick ()) ]
  | 13 -> B.relational b (random_relop rng) (pick ()) (pick ())
  | 14 -> B.compare_const b (random_relop rng) (small_float rng) (pick ())
  | 15 -> B.switch b (pick ()) (pick ()) (pick ())
  | 16 -> B.multiport_switch b (pick ()) (List.init (Rng.int_in rng 2 4) (fun _ -> pick ()))
  | 17 -> B.unit_delay b ~init:(small_float rng) (pick ())
  | 18 -> B.delay b ~init:(small_float rng) (Rng.int_in rng 1 4) (pick ())
  | 19 -> B.memory b ~init:(small_float rng) (pick ())
  | 20 ->
    let lo = small_float rng in
    B.integrator b ~gain:(Rng.float rng 2.0)
      ~limits:{ Graph.int_lower = lo; int_upper = lo +. Rng.float rng 50.0 }
      (pick ())
  | 21 -> B.counter b ~wrap:(Rng.bool rng) (Rng.int_in rng 2 10) (B.compare_zero b Graph.R_gt (pick ()))
  | 22 -> B.edge b (Rng.choose rng [| Graph.E_rising; Graph.E_falling; Graph.E_either |]) (pick ())
  | _ ->
    let n = Rng.int_in rng 2 4 in
    let xs = Array.init n (fun i -> float_of_int (i * 5) +. Rng.float rng 4.0) in
    let ys = Array.init n (fun _ -> small_float rng) in
    B.lookup b ~xs ~ys (pick ())

(* a small random two-state chart over one numeric input *)
let random_chart rng ix =
  let open Chart in
  let thr = Float.of_int (Rng.int_in rng (-10) 10) in
  let hold = Float.of_int (Rng.int_in rng 1 4) in
  {
    chart_name = Printf.sprintf "RandSM%d" ix;
    inputs = [| ("u", Dtype.Float64) |];
    outputs = [| ("y", Dtype.Int32) |];
    locals = [| ("acc", Dtype.Int32, 0.) |];
    states =
      [| leaf "Low"
           ~entry:[ Set_out (0, num 0.) ]
           ~during:[ Set_local (0, local 0 +: num 1.) ]
           ~outgoing:[ { guard = in_ 0 >=: num thr; actions = []; dst = 1 } ];
         leaf "High"
           ~entry:[ Set_out (0, local 0) ]
           ~exit_actions:[ Set_local (0, num 0.) ]
           ~outgoing:
             [ { guard = (in_ 0 <: num thr) &&: (State_time >=: num hold); actions = []; dst = 0 } ]
      |];
    init_state = 0;
  }

(* a tiny inner model used as a random enabled subsystem *)
let random_inner rng =
  let b = B.create "RandInner" in
  let u = B.inport b "u" Dtype.Float64 in
  let body =
    match Rng.int rng 3 with
    | 0 -> B.integrator b ~gain:0.5 ~limits:{ Graph.int_lower = -50.; int_upper = 50. } u
    | 1 -> B.gain b (small_float rng) (B.unit_delay b u)
    | _ -> B.saturation b ~lower:(-5.) ~upper:5. u
  in
  B.outport b "y" body;
  B.finish b

let generate rng =
  let b = B.create "RandomM" in
  let n_in = Rng.int_in rng 1 4 in
  let inputs = Array.init n_in (fun i -> B.inport b (Printf.sprintf "u%d" i) (random_dtype rng)) in
  (* keep arithmetic in a safe numeric regime: floats everywhere *)
  let pool = ref (Array.map (fun s -> B.convert b Dtype.Float64 s) inputs) in
  let n_blocks = Rng.int_in rng 3 18 in
  for ix = 1 to n_blocks do
    let s =
      match Rng.int rng 12 with
      | 0 ->
        (* stateful composite: a chart *)
        (B.chart b (random_chart rng ix) [ Rng.choose rng !pool ]).(0)
      | 1 ->
        (* enabled subsystem with held outputs *)
        let en = B.compare_zero b Graph.R_gt (Rng.choose rng !pool) in
        (B.subsystem b ~activation:Graph.Enabled (random_inner rng) [ en; Rng.choose rng !pool ]).(0)
      | _ -> add_random_block rng b !pool
    in
    (* normalize to Float64 so downstream blocks always compose *)
    let s = B.convert b Dtype.Float64 s in
    pool := Array.append !pool [| s |]
  done;
  let n_out = Rng.int_in rng 1 3 in
  for o = 1 to n_out do
    B.outport b (Printf.sprintf "y%d" o) (Rng.choose rng !pool)
  done;
  B.finish b

let random_input rng (ty : Dtype.t) =
  match ty with
  | Dtype.Bool -> Value.of_bool (Rng.bool rng)
  | ty when Dtype.is_integer ty -> Value.of_int ty (Rng.int_in rng (-40) 40)
  | ty -> Value.of_float ty (Rng.float rng 60.0 -. 30.0)
