(* C-backend differential test: compile the emitted C fuzz code with
   gcc -O2 and check it computes exactly what the closure-compiled
   program computes over random tuple streams. This validates the
   paper's core premise — the generated C faithfully implements the
   model — end to end. Skipped when no C compiler is installed. *)

open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Layout = Cftcg_fuzz.Layout
module Cemit = Cftcg_ir.Cemit
module Ir_compile = Cftcg_ir.Ir_compile

let gcc_available =
  lazy (Sys.command "command -v gcc > /dev/null 2>&1" = 0)

let run_command cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Ok (Buffer.contents buf)
  | Unix.WEXITED n -> Error (Printf.sprintf "exit %d" n)
  | Unix.WSIGNALED n | Unix.WSTOPPED n -> Error (Printf.sprintf "signal %d" n)

(* Expected output computed by the OCaml execution path, formatted
   exactly like the C harness prints it. *)
let ocaml_reference prog layout data =
  let compiled = Ir_compile.compile prog in
  Ir_compile.reset compiled;
  let buf = Buffer.create 1024 in
  for tuple = 0 to Layout.n_tuples layout data - 1 do
    Layout.load_tuple layout data ~tuple compiled;
    Ir_compile.step compiled;
    Array.iteri
      (fun o (_ : Cftcg_ir.Ir.var) ->
        let v = Value.to_float (Ir_compile.get_output compiled o) in
        Buffer.add_string buf (Printf.sprintf "%.17g " v))
      prog.Cftcg_ir.Ir.outputs;
    Buffer.add_string buf "\n"
  done;
  Buffer.contents buf

let differential name m =
  if not (Lazy.force gcc_available) then ()
  else begin
    let prog = Codegen.lower ~mode:Codegen.Full m in
    let layout = Layout.of_program prog in
    let c_source = Cemit.emit_program prog ^ Cemit.emit_test_harness prog in
    let dir = Filename.temp_file "cftcg_cdiff" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let c_path = Filename.concat dir (name ^ ".c") in
    let exe_path = Filename.concat dir (name ^ ".exe") in
    Fun.protect
      ~finally:(fun () ->
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Unix.rmdir dir)
      (fun () ->
        let oc = open_out c_path in
        output_string oc c_source;
        close_out oc;
        (match
           run_command
             (Printf.sprintf "gcc -O2 -fwrapv -o %s %s -lm 2>&1" (Filename.quote exe_path)
                (Filename.quote c_path))
         with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "%s: gcc failed: %s" name msg);
        let rng = Cftcg_util.Rng.create 99L in
        for trial = 1 to 5 do
          let tuples = 10 + Cftcg_util.Rng.int rng 40 in
          let data =
            Bytes.concat Bytes.empty
              (List.init tuples (fun _ -> Layout.random_tuple_bytes layout rng))
          in
          let hex = Cftcg_util.Bytecodec.hex_of_bytes data in
          let expected = ocaml_reference prog layout data in
          match run_command (Printf.sprintf "%s %s" (Filename.quote exe_path) hex) with
          | Ok actual ->
            if String.trim actual <> String.trim expected then
              Alcotest.failf "%s: trial %d diverges\nC:     %s\nOCaml: %s" name trial
                (String.sub actual 0 (min 200 (String.length actual)))
                (String.sub expected 0 (min 200 (String.length expected)))
          | Error msg -> Alcotest.failf "%s: C binary failed: %s" name msg
        done)
  end

let test_fixtures () =
  List.iter
    (fun (name, mk) -> differential name (mk ()))
    [ ("arith", Fixtures.arith_model); ("feedback", Fixtures.feedback_model);
      ("chart", Fixtures.chart_model); ("logic", Fixtures.logic_model);
      ("enabled", Fixtures.enabled_model); ("triggered", Fixtures.triggered_model);
      ("parallel", Test_parallel_states.model) ]

let test_bench_models () =
  List.iter
    (fun (e : Cftcg_bench_models.Bench_models.entry) ->
      differential e.Cftcg_bench_models.Bench_models.name
        (Lazy.force e.Cftcg_bench_models.Bench_models.model))
    Cftcg_bench_models.Bench_models.all

let test_random_models () =
  let rng = Cftcg_util.Rng.create 2718L in
  for i = 1 to 10 do
    differential (Printf.sprintf "random%d" i) (Model_gen.generate rng)
  done

let suites =
  [ ( "cemit.gcc_differential",
      [ Alcotest.test_case "fixtures" `Slow test_fixtures;
        Alcotest.test_case "benchmark models" `Slow test_bench_models;
        Alcotest.test_case "random models" `Slow test_random_models ] ) ]
