(* Tests for the constant dictionary (magic-value extraction). *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Dictionary = Cftcg_fuzz.Dictionary
module Fuzzer = Cftcg_fuzz.Fuzzer
module Recorder = Cftcg_coverage.Recorder
module Rng = Cftcg_util.Rng

(* A token window like EVCS's 4000..4999 authorization check. *)
let token_model () =
  let b = B.create "Token" in
  let token = B.inport b "Token" Dtype.Int32 in
  let t = B.convert b Dtype.Float64 token in
  let ok =
    B.and_ b
      (B.compare_const b Graph.R_ge 1_870_000.0 t)
      (B.compare_const b Graph.R_lt 1_870_100.0 t)
  in
  B.outport b "y" (B.convert b Dtype.Int32 ok);
  B.finish b

let test_extracts_comparison_constants () =
  let prog = Codegen.lower (token_model ()) in
  let dict = Dictionary.of_program prog in
  let consts = Array.to_list (Dictionary.constants dict) in
  Alcotest.(check bool) "lower bound present" true (List.mem 1_870_000.0 consts);
  Alcotest.(check bool) "upper bound present" true (List.mem 1_870_100.0 consts);
  Alcotest.(check bool) "neighbours present" true
    (List.mem 1_869_999.0 consts && List.mem 1_870_101.0 consts)

let test_arithmetic_constants_excluded () =
  (* gains that never reach a comparison should not dilute the pool *)
  let b = B.create "GainOnly" in
  let u = B.inport b "u" Dtype.Float64 in
  B.outport b "y" (B.gain b 123456.0 u);
  let prog = Codegen.lower (B.finish b) in
  let dict = Dictionary.of_program prog in
  Alcotest.(check bool) "gain constant absent" true
    (not (Array.exists (fun x -> x = 123456.0) (Dictionary.constants dict)))

let test_sample_casts_to_field_type () =
  let prog = Codegen.lower (token_model ()) in
  let dict = Dictionary.of_program prog in
  let rng = Rng.create 1L in
  for _ = 1 to 100 do
    match Dictionary.sample dict rng Dtype.Int8 with
    | Some (Value.VInt (Dtype.Int8, n)) ->
      Alcotest.(check bool) "in int8 range" true (n >= -128 && n <= 127)
    | Some _ -> Alcotest.fail "wrong type"
    | None -> Alcotest.fail "empty sample"
  done

let test_empty_dictionary () =
  let b = B.create "NoCmp" in
  let u = B.inport b "u" Dtype.Float64 in
  B.outport b "y" (B.gain b 2.0 u);
  let prog = Codegen.lower ~mode:Codegen.Plain (B.finish b) in
  let dict = Dictionary.of_program prog in
  Alcotest.(check int) "empty" 0 (Dictionary.size dict);
  Alcotest.(check bool) "sample none" true (Dictionary.sample dict (Rng.create 1L) Dtype.Int32 = None)

let coverage ~use_dictionary seed =
  let prog = Codegen.lower (token_model ()) in
  let config = { Fuzzer.default_config with Fuzzer.seed; use_dictionary } in
  let r = Fuzzer.run ~config prog (Fuzzer.Exec_budget 5000) in
  let suite = List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) r.Fuzzer.test_suite in
  (Cftcg.Evaluate.replay prog suite).Recorder.decision_pct

let test_dictionary_reaches_token_window () =
  (* averaged over seeds: the window [1870000, 1870100) in a 2^32
     space is hopeless blind, trivial with the dictionary *)
  let seeds = [ 1L; 2L; 3L ] in
  let avg f = List.fold_left (fun a s -> a +. f s) 0. seeds /. 3. in
  let with_dict = avg (coverage ~use_dictionary:true) in
  let without = avg (coverage ~use_dictionary:false) in
  Alcotest.(check bool)
    (Printf.sprintf "dict (%.0f%%) > blind (%.0f%%)" with_dict without)
    true (with_dict > without);
  Alcotest.(check (float 0.01)) "dict reaches 100%" 100.0 with_dict

let suites =
  [ ( "fuzz.dictionary",
      [ Alcotest.test_case "extracts comparisons" `Quick test_extracts_comparison_constants;
        Alcotest.test_case "excludes arithmetic" `Quick test_arithmetic_constants_excluded;
        Alcotest.test_case "sample casts" `Quick test_sample_casts_to_field_type;
        Alcotest.test_case "empty dictionary" `Quick test_empty_dictionary;
        Alcotest.test_case "reaches token window" `Slow test_dictionary_reaches_token_window ] ) ]
