(* Tests for structured logging (Cftcg_obs.Log), the crash flight
   recorder (Cftcg_obs.Flight), telemetry feed rotation, the fault
   injection hook, and the local campaign crash → post-mortem dump
   path. The JSONL/JSON outputs are parsed back with the serve
   daemon's Wire parser — the log line schema is a wire format, not
   just printf output. *)

module Log = Cftcg_obs.Log
module Flight = Cftcg_obs.Flight
module Metrics = Cftcg_obs.Metrics
module Wire = Cftcg_serve.Wire
module Telemetry = Cftcg_campaign.Telemetry
module Campaign = Cftcg_campaign.Campaign
module Fault = Cftcg_util.Fault
module Codegen = Cftcg_codegen.Codegen
module Models = Cftcg_bench_models.Bench_models

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* every test leaves the process-global logging state off *)
let with_log_off f =
  Fun.protect
    ~finally:(fun () ->
      Log.set_level None;
      Log.close_file ();
      Flight.set_enabled false;
      Flight.clear ();
      Flight.set_capacity 256)
    f

let temp_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%.0f" prefix (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  Unix.mkdir d 0o755;
  d

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let obj_field name = function
  | Wire.Obj l -> List.assoc_opt name l
  | _ -> None

let str_field name j =
  match obj_field name j with
  | Some (Wire.Str s) -> Some s
  | _ -> None

(* --- levels and gating --- *)

let test_level_parsing () =
  Alcotest.(check bool) "debug" true (Log.level_of_string "debug" = Ok (Some Log.Debug));
  Alcotest.(check bool) "info" true (Log.level_of_string "info" = Ok (Some Log.Info));
  Alcotest.(check bool) "warn" true (Log.level_of_string "warn" = Ok (Some Log.Warn));
  Alcotest.(check bool) "warning" true (Log.level_of_string "warning" = Ok (Some Log.Warn));
  Alcotest.(check bool) "error" true (Log.level_of_string "error" = Ok (Some Log.Error));
  Alcotest.(check bool) "off" true (Log.level_of_string "off" = Ok None);
  (match Log.level_of_string "loud" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown level must be rejected")

let test_level_gating () =
  with_log_off @@ fun () ->
  Alcotest.(check bool) "off by default" false (Log.enabled Log.Error);
  Log.set_level (Some Log.Warn);
  Alcotest.(check bool) "error passes" true (Log.enabled Log.Error);
  Alcotest.(check bool) "warn passes" true (Log.enabled Log.Warn);
  Alcotest.(check bool) "info gated" false (Log.enabled Log.Info);
  Alcotest.(check bool) "debug gated" false (Log.enabled Log.Debug);
  Alcotest.(check bool) "current" true (Log.current_level () = Some Log.Warn);
  Log.set_level None;
  Alcotest.(check bool) "off again" false (Log.enabled Log.Error)

(* --- JSONL line schema --- *)

let test_jsonl_lines_parse () =
  with_log_off @@ fun () ->
  let path = Filename.temp_file "cftcg_loglines" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Log.set_level (Some Log.Debug);
  Log.open_file path;
  Log.with_ctx [ ("job", "c1") ] (fun () ->
      Log.info "plain %d" 42;
      Log.warn ~fields:[ ("k", "v\"quote\\slash\nnl") ] "tricky");
  Log.debug "no ctx";
  (* gated line must not be written *)
  Log.set_level (Some Log.Error);
  Log.info "suppressed";
  Log.close_file ();
  let lines = read_lines path in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  let parsed = List.map Wire.of_string lines in
  let l1 = List.nth parsed 0 and l2 = List.nth parsed 1 and l3 = List.nth parsed 2 in
  Alcotest.(check (option string)) "msg" (Some "plain 42") (str_field "msg" l1);
  Alcotest.(check (option string)) "level" (Some "info") (str_field "level" l1);
  Alcotest.(check (option string)) "ctx threaded" (Some "c1") (str_field "job" l1);
  Alcotest.(check bool) "ts present" true
    (match obj_field "ts" l1 with
    | Some (Wire.Num t) -> t > 0.0
    | _ -> false);
  Alcotest.(check (option string)) "adversarial field value round-trips"
    (Some "v\"quote\\slash\nnl") (str_field "k" l2);
  Alcotest.(check (option string)) "ctx restored" None (str_field "job" l3)

let test_ctx_nesting_and_restore () =
  with_log_off @@ fun () ->
  Alcotest.(check (list (pair string string))) "empty outside" [] (Log.ctx ());
  Log.with_ctx [ ("job", "a") ] (fun () ->
      Alcotest.(check (list (pair string string))) "outer" [ ("job", "a") ] (Log.ctx ());
      Log.with_ctx [ ("worker", "3"); ("job", "b") ] (fun () ->
          (* inner same-key binding overrides, outer order preserved *)
          let c = Log.ctx () in
          Alcotest.(check (option string)) "override" (Some "b") (List.assoc_opt "job" c);
          Alcotest.(check (option string)) "added" (Some "3") (List.assoc_opt "worker" c));
      Alcotest.(check (list (pair string string))) "restored" [ ("job", "a") ] (Log.ctx ());
      (try Log.with_ctx [ ("job", "boom") ] (fun () -> failwith "x") with
      | Failure _ -> ());
      Alcotest.(check (list (pair string string))) "restored after raise" [ ("job", "a") ]
        (Log.ctx ()));
  Alcotest.(check (list (pair string string))) "empty again" [] (Log.ctx ())

(* --- flight recorder ring --- *)

let test_flight_disabled_is_noop () =
  with_log_off @@ fun () ->
  Flight.record ~level:"info" "nope";
  Alcotest.(check int) "nothing retained" 0 (List.length (Flight.recent ()));
  Alcotest.(check bool) "dump disabled" true (Flight.dump ~reason:"r" () = None)

let test_flight_ring_wraparound () =
  with_log_off @@ fun () ->
  Flight.set_enabled true;
  Flight.set_capacity 8;
  (* a fresh domain gets a fresh ring at the new capacity *)
  let d =
    Domain.spawn (fun () ->
        for i = 1 to 20 do
          Flight.record ~level:"info" (Printf.sprintf "wrap evt %d" i)
        done)
  in
  Domain.join d;
  let msgs = List.map (fun e -> e.Flight.fl_msg) (Flight.recent ()) in
  let mine = List.filter (fun m -> contains "wrap evt" m) msgs in
  Alcotest.(check int) "ring kept the newest 8" 8 (List.length mine);
  Alcotest.(check bool) "newest present" true (List.mem "wrap evt 20" mine);
  Alcotest.(check bool) "oldest kept is 13" true (List.mem "wrap evt 13" mine);
  Alcotest.(check bool) "older overwritten" false (List.mem "wrap evt 12" mine);
  (* oldest-first ordering by timestamp *)
  let ts = List.map (fun e -> e.Flight.fl_ts) (Flight.recent ()) in
  Alcotest.(check bool) "sorted" true (List.sort compare ts = ts)

let test_flight_recent_limit () =
  with_log_off @@ fun () ->
  Flight.set_enabled true;
  for i = 1 to 10 do
    Flight.record ~ts:(float_of_int i) ~level:"info" (Printf.sprintf "lim %d" i)
  done;
  let r = Flight.recent ~limit:3 () in
  Alcotest.(check (list string)) "newest 3, oldest first" [ "lim 8"; "lim 9"; "lim 10" ]
    (List.map (fun e -> e.Flight.fl_msg) r)

let test_flight_dump_roundtrip () =
  with_log_off @@ fun () ->
  let dir = temp_dir "cftcg_dump" in
  Flight.set_enabled true;
  Flight.set_dump_dir dir;
  Flight.register_provider "good" (fun () -> "{\"answer\":42}");
  Flight.register_provider "bad" (fun () -> failwith "provider died");
  Flight.record ~fields:[ ("job", "c9") ] ~level:"error" "it broke";
  let c = Metrics.counter "cftcg_test_dump_total" in
  Metrics.set_collect true;
  Metrics.inc c;
  let path =
    match Flight.dump ~fields:[ ("job", "c9") ] ~reason:"unit test" () with
    | Some p -> p
    | None -> Alcotest.fail "dump refused"
  in
  Metrics.set_collect false;
  Alcotest.(check bool) "named postmortem" true
    (contains "postmortem-" (Filename.basename path));
  let j = Wire.of_string (String.concat "\n" (read_lines path)) in
  Alcotest.(check (option string)) "reason" (Some "unit test") (str_field "reason" j);
  (match obj_field "fields" j with
  | Some f -> Alcotest.(check (option string)) "dump fields" (Some "c9") (str_field "job" f)
  | None -> Alcotest.fail "no fields object");
  (match obj_field "events" j with
  | Some (Wire.Arr evs) ->
    Alcotest.(check bool) "ring dumped" true
      (List.exists (fun e -> str_field "msg" e = Some "it broke") evs);
    Alcotest.(check bool) "event carries its fields" true
      (List.exists
         (fun e ->
           match obj_field "fields" e with
           | Some f -> str_field "job" f = Some "c9"
           | None -> str_field "job" e = Some "c9")
         evs)
  | _ -> Alcotest.fail "no events array");
  (match obj_field "snapshots" j with
  | Some snaps ->
    (match obj_field "good" snaps with
    | Some (Wire.Obj g) -> Alcotest.(check bool) "provider value" true
        (List.assoc_opt "answer" g = Some (Wire.Num 42.0))
    | _ -> Alcotest.fail "good provider missing");
    Alcotest.(check bool) "raising provider is null" true (obj_field "bad" snaps <> None)
  | None -> Alcotest.fail "no snapshots object");
  (match obj_field "metrics" j with
  | Some (Wire.Str prom) ->
    Alcotest.(check bool) "metrics snapshot embedded" true
      (contains "cftcg_test_dump_total" prom)
  | _ -> Alcotest.fail "no metrics snapshot");
  (* a second dump in the same process gets a distinct file *)
  (match Flight.dump ~reason:"again" () with
  | Some p2 -> Alcotest.(check bool) "distinct file" true (p2 <> path)
  | None -> Alcotest.fail "second dump refused")

(* --- telemetry rotation --- *)

let seq_of line = Wire.get_int ~default:(-1) "seq" (Wire.of_string line)

let chain_segments path =
  (* oldest first: highest .N down to the live file *)
  let rec highest n = if Sys.file_exists (path ^ "." ^ string_of_int (n + 1)) then highest (n + 1) else n in
  let n = if Sys.file_exists (path ^ ".1") then highest 1 else 0 in
  List.init n (fun i -> path ^ "." ^ string_of_int (n - i)) @ [ path ]

let test_telemetry_rotation () =
  let dir = temp_dir "cftcg_rot" in
  let path = Filename.concat dir "events.jsonl" in
  let sink = Telemetry.jsonl ~max_bytes:200 path in
  for i = 1 to 20 do
    sink.Telemetry.emit (Telemetry.Plateau { epoch = i; stalled_epochs = 1 })
  done;
  sink.Telemetry.close ();
  Alcotest.(check bool) "rotated at least once" true (Sys.file_exists (path ^ ".1"));
  (* every segment stays within one event of the limit *)
  List.iter
    (fun seg ->
      let len = (Unix.stat seg).Unix.st_size in
      Alcotest.(check bool) (seg ^ " bounded") true (len <= 200 + 120))
    (chain_segments path);
  (* seq runs 0..19 across the whole chain, oldest segment first *)
  let seqs = List.concat_map (fun seg -> List.map seq_of (read_lines seg)) (chain_segments path) in
  Alcotest.(check (list int)) "seq continuous across chain" (List.init 20 Fun.id) seqs;
  (* append resume continues the seq from the total chain line count *)
  let sink2 = Telemetry.jsonl ~append:true ~max_bytes:200 path in
  sink2.Telemetry.emit (Telemetry.Plateau { epoch = 99; stalled_epochs = 2 });
  sink2.Telemetry.close ();
  let last = List.hd (List.rev (read_lines path)) in
  Alcotest.(check int) "resumed seq" 20 (seq_of last);
  (* a fresh (non-append) feed removes the stale chain *)
  let sink3 = Telemetry.jsonl ~max_bytes:200 path in
  sink3.Telemetry.close ();
  Alcotest.(check bool) "stale chain removed" false (Sys.file_exists (path ^ ".1"));
  Alcotest.(check int) "fresh file truncated" 0 (List.length (read_lines path))

let test_telemetry_rotation_rejects_bad_limit () =
  match Telemetry.jsonl ~max_bytes:0 "nope.jsonl" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max_bytes < 1 must be rejected"

(* --- fault hook --- *)

let test_fault_hook_fires_on_injection () =
  let fired = ref [] in
  Fun.protect ~finally:(fun () -> Fault.set_on_inject (fun _ -> ())) @@ fun () ->
  Fault.set_on_inject (fun p -> fired := Fault.point_name p :: !fired);
  Fault.with_armed [ (Fault.Worker_raise, Fault.Nth 2) ] (fun () ->
      Alcotest.(check bool) "first check clean" false (Fault.fire Fault.Worker_raise);
      Alcotest.(check (list string)) "hook silent" [] !fired;
      Alcotest.(check bool) "second check fires" true (Fault.fire Fault.Worker_raise);
      Alcotest.(check (list string)) "hook saw the injection" [ "worker_raise" ] !fired);
  (* a raising hook must not change injection behavior *)
  Fault.set_on_inject (fun _ -> failwith "hook bug");
  Fault.with_armed [ (Fault.Store_write, Fault.Nth 1) ] (fun () ->
      Alcotest.(check bool) "fires despite raising hook" true (Fault.fire Fault.Store_write))

(* --- campaign crash → post-mortem dump --- *)

let test_campaign_crash_dumps_postmortem () =
  with_log_off @@ fun () ->
  let dir = temp_dir "cftcg_crashdump" in
  Flight.set_enabled true;
  Flight.set_dump_dir dir;
  let e = Option.get (Models.find "SolarPV") in
  let prog = Codegen.lower ~mode:Codegen.Full (Lazy.force e.Models.model) in
  let ccfg =
    { Campaign.default_config with
      Campaign.jobs = 2;
      seed = 11L;
      total_execs = 2000;
      execs_per_epoch = 500;
      on_worker_crash = Campaign.Degrade;
      job = Some "crashjob"
    }
  in
  let r = Fault.with_armed [ (Fault.Worker_raise, Fault.Nth 1) ] (fun () -> Campaign.run ~config:ccfg prog) in
  Alcotest.(check bool) "campaign survived (Degrade)" true (r.Campaign.executions > 0);
  let dumps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> contains "postmortem-" f)
  in
  Alcotest.(check bool) "a post-mortem was written" true (dumps <> []);
  let j = Wire.of_string (String.concat "\n" (read_lines (Filename.concat dir (List.hd dumps)))) in
  Alcotest.(check bool) "reason names the crash" true
    (match str_field "reason" j with
    | Some reason -> contains "worker crash" reason
    | None -> false);
  (match obj_field "fields" j with
  | Some f ->
    Alcotest.(check (option string)) "correlates the job" (Some "crashjob") (str_field "job" f);
    Alcotest.(check bool) "names the worker" true (str_field "worker" f <> None)
  | None -> Alcotest.fail "no fields object");
  (* the divergence/fallback provider made it into the dump *)
  (match obj_field "snapshots" j with
  | Some snaps -> Alcotest.(check bool) "ir_vm_batch snapshot" true (obj_field "ir_vm_batch" snaps <> None)
  | None -> Alcotest.fail "no snapshots object")

let suites =
  [ ( "log.levels",
      [ Alcotest.test_case "level parsing" `Quick test_level_parsing;
        Alcotest.test_case "gating" `Quick test_level_gating ] );
    ( "log.lines",
      [ Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
        Alcotest.test_case "ctx nesting and restore" `Quick test_ctx_nesting_and_restore ] );
    ( "log.flight",
      [ Alcotest.test_case "disabled is noop" `Quick test_flight_disabled_is_noop;
        Alcotest.test_case "ring wraparound" `Quick test_flight_ring_wraparound;
        Alcotest.test_case "recent limit" `Quick test_flight_recent_limit;
        Alcotest.test_case "dump roundtrip" `Quick test_flight_dump_roundtrip ] );
    ( "log.rotation",
      [ Alcotest.test_case "size-based rotation" `Quick test_telemetry_rotation;
        Alcotest.test_case "rejects bad limit" `Quick test_telemetry_rotation_rejects_bad_limit ] );
    ( "log.fault",
      [ Alcotest.test_case "hook fires on injection" `Quick test_fault_hook_fires_on_injection ] );
    ( "log.crash",
      [ Alcotest.test_case "campaign crash dumps post-mortem" `Slow
          test_campaign_crash_dumps_postmortem ] ) ]
