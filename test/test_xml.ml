(* Tests for the minimal XML parser/printer. *)

module Xml = Cftcg_xml.Xml

let parse = Xml.parse_string

let test_simple_element () =
  match parse "<a/>" with
  | Xml.Element ("a", [], []) -> ()
  | _ -> Alcotest.fail "expected empty <a/>"

let test_attributes () =
  let n = parse {|<block type="Sum" signs="+-"/>|} in
  Alcotest.(check (option string)) "type" (Some "Sum") (Xml.attr n "type");
  Alcotest.(check (option string)) "signs" (Some "+-") (Xml.attr n "signs");
  Alcotest.(check (option string)) "missing" None (Xml.attr n "nope")

let test_nested () =
  let n = parse "<m><a x='1'/><b><c/></b></m>" in
  Alcotest.(check int) "two children" 2 (List.length (Xml.child_elements n));
  match Xml.find_first n "b" with
  | Some b -> Alcotest.(check int) "b has c" 1 (List.length (Xml.child_elements b))
  | None -> Alcotest.fail "missing <b>"

let test_text_content () =
  let n = parse "<p>hello <b>bold</b> world</p>" in
  Alcotest.(check string) "direct text" "hello  world" (Xml.text_content n)

let test_entities () =
  let n = parse "<p a=\"&lt;&gt;&amp;&quot;&apos;\">x &lt; y &#65;</p>" in
  Alcotest.(check (option string)) "attr entities" (Some "<>&\"'") (Xml.attr n "a");
  Alcotest.(check string) "text entities" "x < y A" (Xml.text_content n)

let test_comments_skipped () =
  let n = parse "<!-- header --><m><!-- inner --><a/></m><!-- trailer -->" in
  Alcotest.(check int) "one child" 1 (List.length (Xml.child_elements n))

let test_declaration_skipped () =
  let n = parse "<?xml version=\"1.0\"?><m/>" in
  Alcotest.(check string) "tag" "m" (Xml.tag n)

let check_parse_error input =
  match parse input with
  | exception Xml.Parse_error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %S" input)

let test_errors () =
  List.iter check_parse_error
    [ ""; "<a>"; "<a></b>"; "<a x=1/>"; "<a/><b/>"; "<a x='1' x2=/>"; "text only"; "<a>&bogus;</a>" ]

let test_mismatched_close_message () =
  match parse "<a><b></a></b>" with
  | exception Xml.Parse_error { message; _ } ->
    Alcotest.(check bool) "mentions mismatch" true
      (String.length message > 0 && String.sub message 0 10 = "mismatched")
  | _ -> Alcotest.fail "expected mismatch error"

let test_print_parse_roundtrip () =
  let n =
    Xml.Element
      ( "Model",
        [ ("name", "X<&>\"") ],
        [ Xml.Element ("Block", [ ("id", "0") ], [ Xml.Text "a & b < c" ]);
          Xml.Element ("Line", [ ("src", "0:0") ], []) ] )
  in
  let s = Xml.to_string n in
  let n' = parse s in
  Alcotest.(check bool) "roundtrip" true (n = n')

(* Random XML tree generator for round-trip property testing. *)
let gen_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "model"; "block"; "line"; "p_1" ] in
  let attr_val = string_size ~gen:(char_range ' ' '~') (0 -- 12) in
  let attrs =
    list_size (0 -- 3) (pair (oneofl [ "x"; "y"; "name"; "v" ]) attr_val)
    >|= fun l ->
    (* attribute names must be unique *)
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) l
  in
  let text = string_size ~gen:(char_range ' ' '~') (1 -- 10) in
  (* never generate adjacent text nodes: the parser merges them, so
     they cannot round-trip; at most one optional leading text *)
  fix
    (fun self depth ->
      if depth = 0 then map2 (fun n a -> Xml.Element (n, a, [])) name attrs
      else
        let children =
          map2
            (fun lead elems ->
              match lead with
              | Some t -> Xml.Text t :: elems
              | None -> elems)
            (opt text)
            (list_size (0 -- 3) (self (depth - 1)))
        in
        map3 (fun n a c -> Xml.Element (n, a, c)) name attrs children)
    2

(* Printing normalizes whitespace in text nodes, so compare modulo
   trimmed text. *)
let rec normalize = function
  | Xml.Element (t, a, c) ->
    let c =
      List.filter_map
        (fun n ->
          match n with
          | Xml.Text s ->
            let s = String.trim s in
            if s = "" then None else Some (Xml.Text s)
          | e -> Some (normalize e))
        c
    in
    Xml.Element (t, a, c)
  | Xml.Text s -> Xml.Text (String.trim s)

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 (QCheck.make gen_tree) (fun tree ->
      let s = Xml.to_string tree in
      match Xml.parse_string s with
      | parsed -> normalize parsed = normalize tree
      | exception Xml.Parse_error _ -> false)

let prop_roundtrip_compact =
  QCheck.Test.make ~name:"compact print/parse roundtrip" ~count:300 (QCheck.make gen_tree)
    (fun tree ->
      let s = Xml.to_string ~indent:false tree in
      match Xml.parse_string s with
      | parsed -> normalize parsed = normalize tree
      | exception Xml.Parse_error _ -> false)

let suites =
  [ ( "xml.parse",
      [ Alcotest.test_case "simple element" `Quick test_simple_element;
        Alcotest.test_case "attributes" `Quick test_attributes;
        Alcotest.test_case "nested" `Quick test_nested;
        Alcotest.test_case "text content" `Quick test_text_content;
        Alcotest.test_case "entities" `Quick test_entities;
        Alcotest.test_case "comments skipped" `Quick test_comments_skipped;
        Alcotest.test_case "declaration skipped" `Quick test_declaration_skipped;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "mismatched close" `Quick test_mismatched_close_message;
        Alcotest.test_case "roundtrip" `Quick test_print_parse_roundtrip ] );
    ( "xml.properties",
      List.map (QCheck_alcotest.to_alcotest ~verbose:false) [ prop_roundtrip; prop_roundtrip_compact ]
    ) ]
