(* Tests for the CFTCG+Solver hybrid pipeline (the paper's §5
   future-work design). *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Hybrid = Cftcg_baselines.Hybrid
module Fuzzer = Cftcg_fuzz.Fuzzer
module Recorder = Cftcg_coverage.Recorder

(* The paper's hard case: a branch guarded by an exact cross-inport
   relation (here u2 = u1 + 1234567890). Random fuzzing essentially never
   hits it; branch-distance descent does. *)
let cross_constraint_model () =
  let b = B.create "CrossConstraint" in
  let u1 = B.inport b "u1" Dtype.Int32 in
  let u2 = B.inport b "u2" Dtype.Int32 in
  let expected = B.bias b 1234567890.0 (B.convert b Dtype.Float64 u1) in
  let matched = B.relational b Graph.R_eq (B.convert b Dtype.Float64 u2) expected in
  let y = B.switch b (B.const_f b 1.) matched (B.const_f b 0.) in
  B.outport b "y" y;
  B.finish b

let replay prog suite = Cftcg.Evaluate.replay prog suite

let test_hybrid_solves_cross_constraint () =
  let prog = Codegen.lower (cross_constraint_model ()) in
  (* pure fuzzing: the equality branch stays uncovered *)
  let fuzz =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 9L } prog
      (Fuzzer.Exec_budget 30_000)
  in
  let fuzz_report =
    replay prog (List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) fuzz.Fuzzer.test_suite)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fuzzing alone misses the equality (%.0f%%)" fuzz_report.Recorder.decision_pct)
    true
    (fuzz_report.Recorder.decision_pct < 100.0);
  (* hybrid: the solver phase closes it *)
  let r =
    Hybrid.run
      ~config:{ Hybrid.seed = 9L; fuzz_fraction = 0.25 }
      prog ~time_budget:6.0
  in
  let report = replay prog (List.map (fun (tc : Hybrid.test_case) -> tc.Hybrid.data) r.Hybrid.suite) in
  Alcotest.(check (float 0.01)) "hybrid reaches 100% decision" 100.0 report.Recorder.decision_pct;
  Alcotest.(check bool) "solver did work" true (r.Hybrid.solver_executions > 0);
  Alcotest.(check bool) "solver closed objectives" true (r.Hybrid.solver_solved > 0)

let test_hybrid_not_worse_than_fuzzing () =
  let m = Fixtures.arith_model () in
  let prog = Codegen.lower m in
  let fuzz =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 2L } prog
      (Fuzzer.Time_budget 0.5)
  in
  let fuzz_report =
    replay prog (List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) fuzz.Fuzzer.test_suite)
  in
  let hybrid = Hybrid.run ~config:{ Hybrid.default_config with Hybrid.seed = 2L } prog ~time_budget:1.0 in
  let hybrid_report =
    replay prog (List.map (fun (tc : Hybrid.test_case) -> tc.Hybrid.data) hybrid.Hybrid.suite)
  in
  Alcotest.(check bool) "hybrid >= fuzz decision coverage" true
    (hybrid_report.Recorder.decision_pct >= fuzz_report.Recorder.decision_pct -. 0.01)

let test_hybrid_timestamps_ordered () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let r = Hybrid.run prog ~time_budget:0.5 in
  let rec ordered = function
    | (a : Hybrid.test_case) :: (b :: _ as rest) -> a.Hybrid.time <= b.Hybrid.time && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (ordered r.Hybrid.suite)

(* --- Hybrid concolic campaigns: plateau → solve → resume --- *)

module Campaign = Cftcg_campaign.Campaign

(* The example's rolling-code protocol: the unlock path needs
   Response = Challenge + 0x2F1A6B3C exactly, and the lockout states
   behind it need the unlock to happen (or fail) across iterations —
   coverage pure fuzzing never reaches. *)
let rolling_code_model () =
  let b = B.create "RollingCode" in
  let challenge = B.inport b "Challenge" Dtype.Int32 in
  let response = B.inport b "Response" Dtype.Int32 in
  let expected = B.bias b (float_of_int 0x2F1A6B3C) (B.convert b Dtype.Float64 challenge) in
  let ok = B.relational b ~name:"KeyCheck" Graph.R_eq (B.convert b Dtype.Float64 response) expected in
  let attempts = B.counter b ~name:"Lockout" 5 (B.not_ b ok) in
  let locked = B.compare_const b ~name:"Locked" Graph.R_ge 5.0 attempts in
  let state =
    B.multiport_switch b ~name:"DoorState"
      (B.sum b
         [ B.const_f b 1.; B.convert b Dtype.Float64 ok;
           B.gain b 2. (B.convert b Dtype.Float64 locked) ])
      [ B.const_i b Dtype.Int32 0; B.const_i b Dtype.Int32 1; B.const_i b Dtype.Int32 2;
        B.const_i b Dtype.Int32 2 ]
  in
  B.outport b "DoorState" state;
  B.finish b

(* which decision blocks a merged suite leaves uncovered *)
let uncovered_blocks prog suite =
  let recorder = Recorder.create prog in
  let compiled = Cftcg_ir.Ir_compile.compile ~hooks:(Recorder.hooks recorder) prog in
  let layout = Cftcg_fuzz.Layout.of_program prog in
  List.iter
    (fun data ->
      Cftcg_ir.Ir_compile.reset compiled;
      let n = min (Cftcg_fuzz.Layout.n_tuples layout data) 4096 in
      for tuple = 0 to n - 1 do
        Cftcg_fuzz.Layout.load_tuple layout data ~tuple compiled;
        Cftcg_ir.Ir_compile.step compiled
      done)
    suite;
  List.map (fun (block, _, _) -> block) (Recorder.uncovered recorder)

let campaign_config ?(jobs = 2) ?(stop_on_full = true) ~hybrid () =
  { Campaign.default_config with
    Campaign.jobs;
    seed = 9L;
    total_execs = 30_000;
    execs_per_epoch = 500;
    plateau_epochs = 2;
    stop_on_full;
    hybrid =
      (if hybrid then Some { Campaign.default_hybrid with Campaign.solver_execs = 15_000 }
       else None)
  }

let test_campaign_plateau_solve_resume () =
  let prog = Codegen.lower (rolling_code_model ()) in
  (* classic plateau stop: the KeyCheck equality (and the lockout
     states behind it) stay uncovered *)
  let fuzz_only = Campaign.run ~config:(campaign_config ~hybrid:false ()) prog in
  Alcotest.(check bool) "fuzz-only plateaus" true
    (fuzz_only.Campaign.stop_reason = Some Campaign.Plateau);
  Alcotest.(check int) "fuzz-only ran no solver phase" 0 fuzz_only.Campaign.solver_rounds;
  Alcotest.(check bool) "fuzz-only leaves KeyCheck uncovered" true
    (List.mem "KeyCheck" (uncovered_blocks prog fuzz_only.Campaign.suite));
  (* hybrid: the plateau becomes a solve-and-resume *)
  let hybrid = Campaign.run ~config:(campaign_config ~hybrid:true ()) prog in
  Alcotest.(check bool) "solver phase ran" true (hybrid.Campaign.solver_rounds > 0);
  Alcotest.(check bool) "solver closed probes" true (hybrid.Campaign.solver_solved > 0);
  Alcotest.(check bool)
    (Printf.sprintf "hybrid (%d) covers strictly more than fuzz-only (%d)"
       hybrid.Campaign.probes_covered fuzz_only.Campaign.probes_covered)
    true
    (hybrid.Campaign.probes_covered > fuzz_only.Campaign.probes_covered);
  Alcotest.(check (list string)) "hybrid covers every decision" []
    (uncovered_blocks prog hybrid.Campaign.suite);
  Alcotest.(check bool) "hybrid stops on full coverage" true
    (hybrid.Campaign.stop_reason = Some Campaign.Full_coverage);
  (* solver executions were charged against the campaign budget *)
  Alcotest.(check bool) "solver execs counted" true (hybrid.Campaign.solver_executions > 0);
  Alcotest.(check bool) "budget respected" true
    (hybrid.Campaign.executions <= (campaign_config ~hybrid:true ()).Campaign.total_execs)

let test_campaign_hybrid_deterministic () =
  (* stop_on_full off: the documented strictly-deterministic regime.
     Same seed, same worker count -> byte-identical results, including
     the solver phases' seeds, rounds and suite contributions. *)
  let prog = Codegen.lower (cross_constraint_model ()) in
  List.iter
    (fun jobs ->
      let config = campaign_config ~jobs ~stop_on_full:false ~hybrid:true () in
      let r1 = Campaign.run ~config prog and r2 = Campaign.run ~config prog in
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d: solver phase ran" jobs)
        true (r1.Campaign.solver_rounds > 0);
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d: identical results" jobs)
        true (r1 = r2))
    [ 1; 2 ]

let test_campaign_hybrid_obs_parity () =
  (* enabling the whole observability surface must not change what a
     hybrid campaign finds: instrumentation is observation-only *)
  let module Metrics = Cftcg_obs.Metrics in
  let module Trace = Cftcg_obs.Trace in
  let module Log = Cftcg_obs.Log in
  let module Flight = Cftcg_obs.Flight in
  let prog = Codegen.lower (cross_constraint_model ()) in
  let run ~jobs ~obs =
    Metrics.set_collect obs;
    Trace.set_enabled obs;
    Log.set_level (if obs then Some Log.Debug else None);
    Flight.set_enabled obs;
    Fun.protect
      ~finally:(fun () ->
        Metrics.set_collect false;
        Trace.set_enabled false;
        Trace.clear ();
        Log.set_level None;
        Flight.set_enabled false;
        Flight.clear ())
      (fun () ->
        Campaign.run ~config:(campaign_config ~jobs ~stop_on_full:false ~hybrid:true ()) prog)
  in
  List.iter
    (fun jobs ->
      let off = run ~jobs ~obs:false and on = run ~jobs ~obs:true in
      Alcotest.(check bool)
        (Printf.sprintf "jobs %d: obs on/off byte-identical" jobs)
        true (off = on))
    [ 1; 2 ]

let suites =
  [ ( "baselines.hybrid",
      [ Alcotest.test_case "solves cross-inport constraint" `Slow test_hybrid_solves_cross_constraint;
        Alcotest.test_case "not worse than fuzzing" `Slow test_hybrid_not_worse_than_fuzzing;
        Alcotest.test_case "timestamps ordered" `Quick test_hybrid_timestamps_ordered ] );
    ( "campaign.hybrid",
      [ Alcotest.test_case "plateau, solve, resume" `Slow test_campaign_plateau_solve_resume;
        Alcotest.test_case "same-seed runs byte-identical" `Slow test_campaign_hybrid_deterministic;
        Alcotest.test_case "observability parity" `Slow test_campaign_hybrid_obs_parity ] ) ]
