(* Tests for the CFTCG+Solver hybrid pipeline (the paper's §5
   future-work design). *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Hybrid = Cftcg_baselines.Hybrid
module Fuzzer = Cftcg_fuzz.Fuzzer
module Recorder = Cftcg_coverage.Recorder

(* The paper's hard case: a branch guarded by an exact cross-inport
   relation (here u2 = u1 + 1234567890). Random fuzzing essentially never
   hits it; branch-distance descent does. *)
let cross_constraint_model () =
  let b = B.create "CrossConstraint" in
  let u1 = B.inport b "u1" Dtype.Int32 in
  let u2 = B.inport b "u2" Dtype.Int32 in
  let expected = B.bias b 1234567890.0 (B.convert b Dtype.Float64 u1) in
  let matched = B.relational b Graph.R_eq (B.convert b Dtype.Float64 u2) expected in
  let y = B.switch b (B.const_f b 1.) matched (B.const_f b 0.) in
  B.outport b "y" y;
  B.finish b

let replay prog suite = Cftcg.Evaluate.replay prog suite

let test_hybrid_solves_cross_constraint () =
  let prog = Codegen.lower (cross_constraint_model ()) in
  (* pure fuzzing: the equality branch stays uncovered *)
  let fuzz =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 9L } prog
      (Fuzzer.Exec_budget 30_000)
  in
  let fuzz_report =
    replay prog (List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) fuzz.Fuzzer.test_suite)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fuzzing alone misses the equality (%.0f%%)" fuzz_report.Recorder.decision_pct)
    true
    (fuzz_report.Recorder.decision_pct < 100.0);
  (* hybrid: the solver phase closes it *)
  let r =
    Hybrid.run
      ~config:{ Hybrid.seed = 9L; fuzz_fraction = 0.25 }
      prog ~time_budget:6.0
  in
  let report = replay prog (List.map (fun (tc : Hybrid.test_case) -> tc.Hybrid.data) r.Hybrid.suite) in
  Alcotest.(check (float 0.01)) "hybrid reaches 100% decision" 100.0 report.Recorder.decision_pct;
  Alcotest.(check bool) "solver did work" true (r.Hybrid.solver_executions > 0);
  Alcotest.(check bool) "solver closed objectives" true (r.Hybrid.solver_solved > 0)

let test_hybrid_not_worse_than_fuzzing () =
  let m = Fixtures.arith_model () in
  let prog = Codegen.lower m in
  let fuzz =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 2L } prog
      (Fuzzer.Time_budget 0.5)
  in
  let fuzz_report =
    replay prog (List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) fuzz.Fuzzer.test_suite)
  in
  let hybrid = Hybrid.run ~config:{ Hybrid.default_config with Hybrid.seed = 2L } prog ~time_budget:1.0 in
  let hybrid_report =
    replay prog (List.map (fun (tc : Hybrid.test_case) -> tc.Hybrid.data) hybrid.Hybrid.suite)
  in
  Alcotest.(check bool) "hybrid >= fuzz decision coverage" true
    (hybrid_report.Recorder.decision_pct >= fuzz_report.Recorder.decision_pct -. 0.01)

let test_hybrid_timestamps_ordered () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let r = Hybrid.run prog ~time_budget:0.5 in
  let rec ordered = function
    | (a : Hybrid.test_case) :: (b :: _ as rest) -> a.Hybrid.time <= b.Hybrid.time && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (ordered r.Hybrid.suite)

let suites =
  [ ( "baselines.hybrid",
      [ Alcotest.test_case "solves cross-inport constraint" `Slow test_hybrid_solves_cross_constraint;
        Alcotest.test_case "not worse than fuzzing" `Slow test_hybrid_not_worse_than_fuzzing;
        Alcotest.test_case "timestamps ordered" `Quick test_hybrid_timestamps_ordered ] ) ]
