(* Tests for test-suite minimization and the detailed coverage
   report. *)

open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Minimize = Cftcg_fuzz.Minimize
module Layout = Cftcg_fuzz.Layout
module Recorder = Cftcg_coverage.Recorder

let campaign_suite prog seed execs =
  let r = Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed } prog (Fuzzer.Exec_budget execs) in
  List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) r.Fuzzer.test_suite

let test_minimize_preserves_coverage () =
  List.iter
    (fun (name, mk) ->
      let prog = Codegen.lower (mk ()) in
      let suite = campaign_suite prog 6L 5000 in
      let kept, stats = Minimize.suite prog suite in
      let before = Cftcg.Evaluate.replay prog suite in
      let after = Cftcg.Evaluate.replay prog kept in
      Alcotest.(check (float 0.001))
        (name ^ " decision preserved")
        before.Recorder.decision_pct after.Recorder.decision_pct;
      Alcotest.(check (float 0.001))
        (name ^ " condition preserved")
        before.Recorder.condition_pct after.Recorder.condition_pct;
      Alcotest.(check int) (name ^ " accounting") (List.length suite)
        (stats.Minimize.kept + stats.Minimize.dropped))
    [ ("arith", Fixtures.arith_model); ("logic", Fixtures.logic_model);
      ("chart", Fixtures.chart_model) ]

let test_minimize_drops_redundant () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let layout = Layout.of_program prog in
  let mk a b c =
    let data = Bytes.create layout.Layout.tuple_len in
    Layout.set_field layout data ~tuple:0 ~field:0 (Value.of_bool a);
    Layout.set_field layout data ~tuple:0 ~field:1 (Value.of_bool b);
    Layout.set_field layout data ~tuple:0 ~field:2 (Value.of_bool c);
    data
  in
  (* exhaustive plus duplicates: minimized set must shrink *)
  let all =
    [ mk false false false; mk false false true; mk false true false; mk false true true;
      mk true false false; mk true false true; mk true true false; mk true true true ]
  in
  let suite = all @ all @ all in
  let kept, stats = Minimize.suite prog suite in
  Alcotest.(check bool) "duplicates dropped" true (stats.Minimize.dropped >= List.length all * 2);
  Alcotest.(check bool) "kept nonempty" true (kept <> [])

(* probe bitmap of a suite: replay every case and record which probe
   cells fire — Minimize's invariant is that this set is preserved *)
let probe_set prog suite =
  let layout = Layout.of_program prog in
  let n = max prog.Cftcg_ir.Ir.n_probes 1 in
  let total = Bytes.make n '\000' in
  let hooks = Cftcg_ir.Hooks.probes_only (fun id -> Bytes.set total id '\001') in
  let compiled = Cftcg_ir.Ir_compile.compile ~hooks prog in
  List.iter
    (fun data ->
      Cftcg_ir.Ir_compile.reset compiled;
      for tuple = 0 to Layout.n_tuples layout data - 1 do
        Layout.load_tuple layout data ~tuple compiled;
        Cftcg_ir.Ir_compile.step compiled
      done)
    suite;
  total

let prop_minimize_preserves_probe_set =
  QCheck.Test.make ~name:"minimize preserves the probe set on random models" ~count:25
    QCheck.(make Gen.(int_bound 100_000))
    (fun case_seed ->
      let rng = Cftcg_util.Rng.create (Int64.of_int (case_seed + 1)) in
      let prog = Codegen.lower (Model_gen.generate rng) in
      let suite =
        campaign_suite prog (Int64.of_int (case_seed * 2654435761 + 17)) 400
      in
      let kept, _ = Minimize.suite prog suite in
      probe_set prog kept = probe_set prog suite)

let test_minimize_duplicate_inputs () =
  (* a suite that is one input repeated collapses to that input *)
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let layout = Layout.of_program prog in
  let d = Bytes.make layout.Layout.tuple_len '\001' in
  let kept, stats = Minimize.suite prog [ d; Bytes.copy d; Bytes.copy d; Bytes.copy d ] in
  Alcotest.(check int) "one survivor" 1 (List.length kept);
  Alcotest.(check int) "three dropped" 3 stats.Minimize.dropped;
  Alcotest.(check bytes) "the input itself" d (List.hd kept)

let test_minimize_empty_suite () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let kept, stats = Minimize.suite prog [] in
  Alcotest.(check int) "nothing kept" 0 (List.length kept);
  Alcotest.(check int) "nothing dropped" 0 stats.Minimize.dropped

let test_minimize_prefers_short_cases () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let layout = Layout.of_program prog in
  let short = Bytes.make layout.Layout.tuple_len '\001' in
  let long = Bytes.make (10 * layout.Layout.tuple_len) '\001' in
  (* identical coverage: the short one must win *)
  let kept, _ = Minimize.suite prog [ long; short ] in
  (match kept with
  | [ k ] -> Alcotest.(check int) "short kept" (Bytes.length short) (Bytes.length k)
  | _ -> Alcotest.fail "expected exactly one survivor")

let test_detailed_report_mentions_uncovered () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let recorder = Recorder.create prog in
  let compiled = Cftcg_ir.Ir_compile.compile ~hooks:(Recorder.hooks recorder) prog in
  Cftcg_ir.Ir_compile.reset compiled;
  (* single input: half the outcomes stay uncovered *)
  List.iteri (fun i v -> Cftcg_ir.Ir_compile.set_input compiled i v)
    [ Value.of_bool true; Value.of_bool true; Value.of_bool true ];
  Cftcg_ir.Ir_compile.step compiled;
  let text = Recorder.detailed recorder in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has NOT COVERED" true (contains "NOT COVERED" text);
  Alcotest.(check bool) "has T only" true (contains "T only" text);
  Alcotest.(check bool) "has MCDC status" true (contains "MCDC NOT achieved" text)

let test_html_report () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let recorder = Recorder.create prog in
  let compiled = Cftcg_ir.Ir_compile.compile ~hooks:(Recorder.hooks recorder) prog in
  Cftcg_ir.Ir_compile.reset compiled;
  List.iteri (fun i v -> Cftcg_ir.Ir_compile.set_input compiled i v)
    [ Value.of_bool true; Value.of_bool false; Value.of_bool true ];
  Cftcg_ir.Ir_compile.step compiled;
  let html =
    Cftcg_coverage.Html_report.render ~model_name:"LogicM"
      ~signal_ranges:[ ("y", 0.0, 1.0) ] recorder
  in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has title" true (contains "Model coverage — LogicM" html);
  Alcotest.(check bool) "has uncovered marker" true (contains "miss" html);
  Alcotest.(check bool) "has signal table" true (contains "Signal ranges" html);
  Alcotest.(check bool) "closes html" true (contains "</html>" html);
  (* structured status agrees with the aggregate report *)
  let statuses = Recorder.decisions_status recorder in
  let covered =
    List.fold_left
      (fun acc (d : Recorder.decision_status) ->
        acc + Array.fold_left (fun a c -> a + Bool.to_int c) 0 d.Recorder.ds_outcomes)
      0 statuses
  in
  Alcotest.(check int) "status matches report" (Recorder.report recorder).Recorder.outcomes_covered
    covered

let suites =
  [ ( "fuzz.minimize",
      [ Alcotest.test_case "preserves coverage" `Slow test_minimize_preserves_coverage;
        Alcotest.test_case "drops redundant" `Quick test_minimize_drops_redundant;
        Alcotest.test_case "empty suite" `Quick test_minimize_empty_suite;
        Alcotest.test_case "duplicate inputs" `Quick test_minimize_duplicate_inputs;
        Alcotest.test_case "prefers short" `Quick test_minimize_prefers_short_cases;
        QCheck_alcotest.to_alcotest ~verbose:false prop_minimize_preserves_probe_set ] );
    ( "coverage.detailed",
      [ Alcotest.test_case "report content" `Quick test_detailed_report_mentions_uncovered;
        Alcotest.test_case "html report" `Quick test_html_report ] ) ]
