(* Tests for dtype promotion and C-semantics value arithmetic. *)

module Dtype = Cftcg_model.Dtype
module Value = Cftcg_model.Value

let vi ty n = Value.of_int ty n
let vf ty f = Value.of_float ty f

let check_value msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %s, got %s" msg (Value.to_string expected)
       (Value.to_string actual))
    true (Value.equal expected actual)

let test_sizes () =
  Alcotest.(check int) "bool" 1 (Dtype.size_bytes Dtype.Bool);
  Alcotest.(check int) "int8" 1 (Dtype.size_bytes Dtype.Int8);
  Alcotest.(check int) "int16" 2 (Dtype.size_bytes Dtype.Int16);
  Alcotest.(check int) "uint32" 4 (Dtype.size_bytes Dtype.UInt32);
  Alcotest.(check int) "single" 4 (Dtype.size_bytes Dtype.Float32);
  Alcotest.(check int) "double" 8 (Dtype.size_bytes Dtype.Float64)

let test_name_roundtrip () =
  List.iter
    (fun ty ->
      match Dtype.of_string (Dtype.name ty) with
      | Some ty' -> Alcotest.(check bool) (Dtype.name ty) true (Dtype.equal ty ty')
      | None -> Alcotest.fail ("of_string failed for " ^ Dtype.name ty))
    Dtype.all

let test_promote () =
  let check a b expected =
    Alcotest.(check string)
      (Printf.sprintf "%s+%s" (Dtype.name a) (Dtype.name b))
      (Dtype.name expected)
      (Dtype.name (Dtype.promote a b))
  in
  check Dtype.Int8 Dtype.Int32 Dtype.Int32;
  check Dtype.UInt8 Dtype.UInt16 Dtype.UInt16;
  check Dtype.UInt32 Dtype.Int8 Dtype.Int32;
  check Dtype.Int32 Dtype.Float32 Dtype.Float32;
  check Dtype.Float32 Dtype.Float64 Dtype.Float64;
  check Dtype.Bool Dtype.Bool Dtype.Int8;
  check Dtype.Bool Dtype.UInt16 Dtype.UInt16

let test_wraparound () =
  check_value "int8 overflow wraps" (vi Dtype.Int8 (-128))
    (Value.add Dtype.Int8 (vi Dtype.Int8 127) (vi Dtype.Int8 1));
  check_value "uint8 overflow wraps" (vi Dtype.UInt8 0)
    (Value.add Dtype.UInt8 (vi Dtype.UInt8 255) (vi Dtype.UInt8 1));
  check_value "int16 underflow wraps" (vi Dtype.Int16 32767)
    (Value.sub Dtype.Int16 (vi Dtype.Int16 (-32768)) (vi Dtype.Int16 1));
  check_value "int32 mul wraps" (vi Dtype.Int32 (-2147483648))
    (Value.mul Dtype.Int32 (vi Dtype.Int32 65536) (vi Dtype.Int32 32768))

let test_division () =
  check_value "int div truncates" (vi Dtype.Int32 (-2))
    (Value.div Dtype.Int32 (vi Dtype.Int32 (-7)) (vi Dtype.Int32 3));
  check_value "div by zero is zero" (vi Dtype.Int32 0)
    (Value.div Dtype.Int32 (vi Dtype.Int32 5) (vi Dtype.Int32 0));
  check_value "float div by zero is zero" (vf Dtype.Float64 0.0)
    (Value.div Dtype.Float64 (vf Dtype.Float64 1.0) (vf Dtype.Float64 0.0));
  check_value "rem sign follows dividend" (vi Dtype.Int32 (-1))
    (Value.rem Dtype.Int32 (vi Dtype.Int32 (-7)) (vi Dtype.Int32 3))

let test_float_to_int_saturates () =
  check_value "overflow saturates" (vi Dtype.Int8 127) (Value.of_float Dtype.Int8 1000.0);
  check_value "underflow saturates" (vi Dtype.Int8 (-128)) (Value.of_float Dtype.Int8 (-1000.0));
  check_value "NaN maps to zero" (vi Dtype.Int32 0) (Value.of_float Dtype.Int32 Float.nan);
  check_value "truncates toward zero" (vi Dtype.Int32 (-3)) (Value.of_float Dtype.Int32 (-3.9));
  check_value "uint negative saturates" (vi Dtype.UInt16 0) (Value.of_float Dtype.UInt16 (-5.0))

let test_int_cast_wraps () =
  check_value "int32 -> int8 wraps" (vi Dtype.Int8 (-56)) (Value.cast Dtype.Int8 (vi Dtype.Int32 200));
  check_value "int32 -> uint8 wraps" (vi Dtype.UInt8 44)
    (Value.cast Dtype.UInt8 (vi Dtype.Int32 300));
  check_value "negative -> uint wraps" (vi Dtype.UInt8 255)
    (Value.cast Dtype.UInt8 (vi Dtype.Int32 (-1)))

let test_float32_rounding () =
  let v = Value.of_float Dtype.Float32 0.1 in
  (match v with
  | Value.VFloat (Dtype.Float32, f) ->
    Alcotest.(check bool) "0.1 rounded to f32" true (f <> 0.1)
  | _ -> Alcotest.fail "expected f32");
  let sum = Value.add Dtype.Float32 (vf Dtype.Float32 1e8) (vf Dtype.Float32 1.0) in
  check_value "f32 addition loses precision" (vf Dtype.Float32 1e8) sum

let test_bool_semantics () =
  Alcotest.(check bool) "nonzero is true" true (Value.is_true (vi Dtype.Int32 (-3)));
  Alcotest.(check bool) "zero is false" false (Value.is_true (vf Dtype.Float64 0.0));
  check_value "bool from float" (Value.of_bool true) (Value.of_float Dtype.Bool 0.5);
  check_value "cast bool to int" (vi Dtype.Int32 1) (Value.cast Dtype.Int32 (Value.of_bool true))

let test_min_max () =
  check_value "min picks smaller" (vi Dtype.Int32 2)
    (Value.min Dtype.Int32 (vi Dtype.Int32 2) (vi Dtype.Int32 9));
  check_value "max picks larger" (vf Dtype.Float64 9.5)
    (Value.max Dtype.Float64 (vf Dtype.Float64 2.0) (vf Dtype.Float64 9.5))

let test_abs_neg () =
  check_value "abs negative" (vi Dtype.Int32 7) (Value.abs Dtype.Int32 (vi Dtype.Int32 (-7)));
  check_value "abs INT8_MIN wraps (C semantics)" (vi Dtype.Int8 (-128))
    (Value.abs Dtype.Int8 (vi Dtype.Int8 (-128)));
  check_value "neg" (vi Dtype.Int32 (-5)) (Value.neg Dtype.Int32 (vi Dtype.Int32 5))

let test_decode_encode () =
  let b = Bytes.create 8 in
  List.iter
    (fun v ->
      Value.encode v b 0;
      check_value ("decode " ^ Value.to_string v) v (Value.decode (Value.dtype v) b 0))
    [ vi Dtype.Int8 (-100); vi Dtype.UInt8 250; vi Dtype.Int16 (-30000); vi Dtype.UInt16 60000;
      vi Dtype.Int32 (-2000000000); vi Dtype.UInt32 4000000000; vf Dtype.Float32 3.5;
      vf Dtype.Float64 (-1.25e-3); Value.of_bool true; Value.of_bool false ]

let test_string_roundtrip () =
  List.iter
    (fun v ->
      match Value.of_string (Value.to_string v) with
      | Some v' -> check_value ("roundtrip " ^ Value.to_string v) v v'
      | None -> Alcotest.fail ("of_string failed: " ^ Value.to_string v))
    [ vi Dtype.Int32 42; vi Dtype.Int8 (-1); vf Dtype.Float64 0.125; vf Dtype.Float32 1e10;
      Value.of_bool true ]

(* Property: value arithmetic on integer types always stays in range. *)
let int_dtype_gen = QCheck.Gen.oneofl [ Dtype.Int8; Dtype.UInt8; Dtype.Int16; Dtype.UInt16; Dtype.Int32; Dtype.UInt32 ]

let prop_arith_in_range =
  QCheck.Test.make ~name:"integer arithmetic stays in range" ~count:1000
    QCheck.(
      make
        Gen.(
          let op = oneofl [ Value.add; Value.sub; Value.mul; Value.div; Value.rem ] in
          quad int_dtype_gen op (int_range (-5000000) 5000000) (int_range (-5000000) 5000000)))
    (fun (ty, op, a, b) ->
      match op ty (Value.of_int ty a) (Value.of_int ty b) with
      | Value.VInt (ty', n) ->
        Dtype.equal ty ty' && n >= Dtype.min_int_value ty && n <= Dtype.max_int_value ty
      | _ -> false)

let prop_encode_decode =
  QCheck.Test.make ~name:"encode/decode identity" ~count:1000
    QCheck.(make Gen.(pair int_dtype_gen (int_range (-4000000000) 4000000000)))
    (fun (ty, n) ->
      let v = Value.of_int ty n in
      let b = Bytes.create 8 in
      Value.encode v b 0;
      Value.equal v (Value.decode ty b 0))

let prop_cast_idempotent =
  QCheck.Test.make ~name:"cast is idempotent" ~count:500
    QCheck.(make Gen.(pair int_dtype_gen float))
    (fun (ty, f) ->
      let once = Value.of_float ty f in
      Value.equal once (Value.cast ty once))

let suites =
  [ ( "model.dtype",
      [ Alcotest.test_case "sizes" `Quick test_sizes;
        Alcotest.test_case "name roundtrip" `Quick test_name_roundtrip;
        Alcotest.test_case "promotion" `Quick test_promote ] );
    ( "model.value",
      [ Alcotest.test_case "wraparound" `Quick test_wraparound;
        Alcotest.test_case "division" `Quick test_division;
        Alcotest.test_case "float->int saturation" `Quick test_float_to_int_saturates;
        Alcotest.test_case "int cast wraps" `Quick test_int_cast_wraps;
        Alcotest.test_case "float32 rounding" `Quick test_float32_rounding;
        Alcotest.test_case "bool semantics" `Quick test_bool_semantics;
        Alcotest.test_case "min/max" `Quick test_min_max;
        Alcotest.test_case "abs/neg" `Quick test_abs_neg;
        Alcotest.test_case "decode/encode" `Quick test_decode_encode;
        Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip ] );
    ( "model.value.properties",
      List.map (QCheck_alcotest.to_alcotest ~verbose:false)
        [ prop_arith_in_range; prop_encode_decode; prop_cast_idempotent ] ) ]
