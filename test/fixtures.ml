(* Shared model fixtures used across test suites. *)

open Cftcg_model
module B = Build

(* y = sat(u1 + u2, [-10, 10]); z = switch(ctl > 0, y, -y) *)
let arith_model () =
  let b = B.create "Arith" in
  let u1 = B.inport b "u1" Dtype.Int32 in
  let u2 = B.inport b "u2" Dtype.Int32 in
  let ctl = B.inport b "ctl" Dtype.Int8 in
  let s = B.sum b [ u1; u2 ] in
  let sat = B.saturation b ~lower:(-10.) ~upper:10. s in
  let neg = B.neg b sat in
  let z = B.switch b sat ctl neg in
  B.outport b "y" sat;
  B.outport b "z" z;
  B.finish b

(* Accumulator with a unit-delay feedback loop:
   acc[k] = sat(acc[k-1] + u, [0, 100]) *)
let feedback_model () =
  let b = B.create "Feedback" in
  let u = B.inport b "u" Dtype.Float64 in
  let acc = B.integrator b ~limits:{ Graph.int_lower = 0.; int_upper = 100. } u in
  B.outport b "acc" acc;
  B.finish b

(* A two-state chart: Idle -> Busy when start, Busy -> Idle after 3 steps. *)
let toggle_chart () =
  let open Chart in
  {
    chart_name = "Toggle";
    inputs = [| ("start", Dtype.Bool) |];
    outputs = [| ("busy", Dtype.Bool) |];
    locals = [||];
    states =
      [| {
           state_name = "Idle";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ Set_out (0, num 0.) ];
           during = [];
           outgoing = [ { guard = in_ 0 >: num 0.; actions = []; dst = 1 } ];
         };
         {
           state_name = "Busy";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ Set_out (0, num 1.) ];
           during = [];
           outgoing = [ { guard = State_time >=: num 3.; actions = []; dst = 0 } ];
         } |];
    init_state = 0;
  }

let chart_model () =
  let b = B.create "ChartM" in
  let start = B.inport b "start" Dtype.Bool in
  let outs = B.chart b (toggle_chart ()) [ start ] in
  B.outport b "busy" outs.(0);
  B.finish b

(* Logic-heavy model exercising condition/MCDC coverage:
   y = (a && b) || !c *)
let logic_model () =
  let b = B.create "LogicM" in
  let a = B.inport b "a" Dtype.Bool in
  let bb = B.inport b "b" Dtype.Bool in
  let c = B.inport b "c" Dtype.Bool in
  let ab = B.and_ b a bb in
  let nc = B.not_ b c in
  let y = B.or_ b ab nc in
  B.outport b "y" y;
  B.finish b

(* Enabled subsystem holding its output while disabled:
   inner: y = u * 2 *)
let enabled_model () =
  let inner =
    let b = B.create "Inner" in
    let u = B.inport b "u" Dtype.Float64 in
    let y = B.gain b 2.0 u in
    B.outport b "y" y;
    B.finish b
  in
  let b = B.create "EnabledM" in
  let en = B.inport b "en" Dtype.Bool in
  let u = B.inport b "u" Dtype.Float64 in
  let outs = B.subsystem b ~activation:Graph.Enabled inner [ en; u ] in
  B.outport b "y" outs.(0);
  B.finish b

(* Triggered subsystem: body runs on rising edges only. *)
let triggered_model () =
  let inner =
    let b = B.create "TInner" in
    let u = B.inport b "u" Dtype.Float64 in
    let acc = B.integrator b u in
    B.outport b "acc" acc;
    B.finish b
  in
  let b = B.create "TriggeredM" in
  let trig = B.inport b "trig" Dtype.Bool in
  let u = B.inport b "u" Dtype.Float64 in
  let outs = B.subsystem b ~activation:(Graph.Triggered Graph.E_rising) inner [ trig; u ] in
  B.outport b "y" outs.(0);
  B.finish b

(* A model with every remaining block family, for smoke coverage. *)
let kitchen_sink_model () =
  let b = B.create "Sink" in
  let u = B.inport b "u" Dtype.Float64 in
  let i = B.inport b "i" Dtype.Int32 in
  let p1 = B.product b [ u; B.const_f b 0.5 ] in
  let dz = B.dead_zone b ~lower:(-1.) ~upper:1. p1 in
  let rel = B.relay b ~on_point:5. ~off_point:(-5.) ~on_value:1. ~off_value:0. dz in
  let q = B.quantizer b 0.25 u in
  let rl = B.rate_limiter b ~rising:0.5 ~falling:(-0.5) q in
  let lk = B.lookup b ~xs:[| 0.; 1.; 2. |] ~ys:[| 0.; 10.; 15. |] rl in
  let mn = B.min_ b [ lk; u ] in
  let mx = B.max_ b [ lk; u ] in
  let sgn = B.sign b u in
  let ab = B.abs_ b u in
  let sq = B.math b Graph.F_square u in
  let rt = B.math b Graph.F_sqrt sq in
  let fl = B.rounding b Graph.R_floor u in
  let dl = B.delay b 3 u in
  let mem = B.memory b u in
  let flt = B.filter b 0.3 u in
  let cmp = B.compare_const b Graph.R_gt 0.0 u in
  let cnt = B.counter b 5 cmp in
  let edge_s = B.edge b Graph.E_rising cmp in
  let conv = B.convert b Dtype.Int16 u in
  let msel = B.multiport_switch b i [ mn; mx; sgn ] in
  let total =
    B.sum b
      [ dz; rel; rl; lk; B.convert b Dtype.Float64 ab; rt; fl; dl; mem; flt;
        B.convert b Dtype.Float64 cnt; B.convert b Dtype.Float64 edge_s;
        B.convert b Dtype.Float64 conv; B.convert b Dtype.Float64 msel ]
  in
  B.outport b "y" total;
  B.finish b
