(* Tests for model lowering: semantics of generated programs,
   instrumentation structure, and differential agreement between the
   IR evaluator and the closure compiler on random input streams. *)

open Cftcg_model
open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen

let compile_eval_pair ?mode m =
  let p = Codegen.lower ?mode m in
  (p, Ir_eval.create p, Ir_compile.compile p)

let drive_compiled c inputs =
  List.iteri (fun i v -> Ir_compile.set_input c i v) inputs;
  Ir_compile.step c

let vf f = Value.of_float Dtype.Float64 f
let vi ty n = Value.of_int ty n

let test_arith_semantics () =
  let _, _, c = compile_eval_pair (Fixtures.arith_model ()) in
  Ir_compile.reset c;
  (* y = sat(u1+u2), z = ctl>0 ? y : -y *)
  drive_compiled c [ vi Dtype.Int32 3; vi Dtype.Int32 4; vi Dtype.Int8 1 ];
  Alcotest.(check (float 0.0)) "y" 7.0 (Value.to_float (Ir_compile.get_output c 0));
  Alcotest.(check (float 0.0)) "z" 7.0 (Value.to_float (Ir_compile.get_output c 1));
  drive_compiled c [ vi Dtype.Int32 30; vi Dtype.Int32 4; vi Dtype.Int8 0 ];
  Alcotest.(check (float 0.0)) "y saturated" 10.0 (Value.to_float (Ir_compile.get_output c 0));
  Alcotest.(check (float 0.0)) "z negated" (-10.0) (Value.to_float (Ir_compile.get_output c 1))

let test_integrator_accumulates_and_saturates () =
  let _, _, c = compile_eval_pair (Fixtures.feedback_model ()) in
  Ir_compile.reset c;
  (* forward Euler: output lags one step; limit at 100 *)
  drive_compiled c [ vf 60.0 ];
  Alcotest.(check (float 0.0)) "first step outputs init" 0.0 (Value.to_float (Ir_compile.get_output c 0));
  drive_compiled c [ vf 60.0 ];
  Alcotest.(check (float 0.0)) "second step 60" 60.0 (Value.to_float (Ir_compile.get_output c 0));
  drive_compiled c [ vf 60.0 ];
  Alcotest.(check (float 0.0)) "saturates at 100" 100.0 (Value.to_float (Ir_compile.get_output c 0))

let test_chart_behaviour () =
  let _, _, c = compile_eval_pair (Fixtures.chart_model ()) in
  Ir_compile.reset c;
  let busy () = Value.is_true (Ir_compile.get_output c 0) in
  drive_compiled c [ Value.of_bool false ];
  Alcotest.(check bool) "idle initially" false (busy ());
  drive_compiled c [ Value.of_bool true ];
  Alcotest.(check bool) "starts" true (busy ());
  (* Busy holds for 3 steps of state_time *)
  drive_compiled c [ Value.of_bool false ];
  Alcotest.(check bool) "busy 1" true (busy ());
  drive_compiled c [ Value.of_bool false ];
  Alcotest.(check bool) "busy 2" true (busy ());
  drive_compiled c [ Value.of_bool false ];
  Alcotest.(check bool) "busy 3" true (busy ());
  drive_compiled c [ Value.of_bool false ];
  Alcotest.(check bool) "back to idle" false (busy ())

let test_enabled_subsystem_holds_output () =
  let _, _, c = compile_eval_pair (Fixtures.enabled_model ()) in
  Ir_compile.reset c;
  drive_compiled c [ Value.of_bool true; vf 4.0 ];
  Alcotest.(check (float 0.0)) "enabled computes" 8.0 (Value.to_float (Ir_compile.get_output c 0));
  drive_compiled c [ Value.of_bool false; vf 100.0 ];
  Alcotest.(check (float 0.0)) "disabled holds" 8.0 (Value.to_float (Ir_compile.get_output c 0));
  drive_compiled c [ Value.of_bool true; vf 1.0 ];
  Alcotest.(check (float 0.0)) "re-enabled recomputes" 2.0 (Value.to_float (Ir_compile.get_output c 0))

let test_logic_model_truth_table () =
  let _, _, c = compile_eval_pair (Fixtures.logic_model ()) in
  (* y = (a && b) || !c *)
  let cases =
    [ (false, false, false, true); (false, false, true, false); (true, false, true, false);
      (true, true, false, true); (true, true, true, true); (false, true, true, false) ]
  in
  Ir_compile.reset c;
  List.iter
    (fun (a, b, cc, expected) ->
      drive_compiled c [ Value.of_bool a; Value.of_bool b; Value.of_bool cc ];
      Alcotest.(check bool)
        (Printf.sprintf "(%b,%b,%b)" a b cc)
        expected
        (Value.is_true (Ir_compile.get_output c 0)))
    cases

let test_instrumentation_counts () =
  let m = Fixtures.logic_model () in
  let full = Codegen.lower ~mode:Codegen.Full m in
  let branchless = Codegen.lower ~mode:Codegen.Branchless m in
  let plain = Codegen.lower ~mode:Codegen.Plain m in
  (* 3 logic blocks (not is un-instrumented): and(2 conds), or(2 conds) *)
  Alcotest.(check int) "full: 2 decisions" 2 (Array.length full.Ir.decisions);
  Alcotest.(check int) "full: probes = outcomes + 2*conds" (2 * 2 + 2 * 2 * 2) full.Ir.n_probes;
  Alcotest.(check int) "branchless: no decisions" 0 (Array.length branchless.Ir.decisions);
  Alcotest.(check int) "branchless logic: no probes" 0 branchless.Ir.n_probes;
  Alcotest.(check int) "plain: no probes" 0 plain.Ir.n_probes;
  Alcotest.(check int) "plain: no decisions" 0 (Array.length plain.Ir.decisions)

let test_modes_agree_semantically () =
  (* instrumentation must not change observable behaviour *)
  let m = Fixtures.kitchen_sink_model () in
  let progs =
    List.map (fun mode -> Ir_compile.compile (Codegen.lower ~mode m))
      [ Codegen.Full; Codegen.Branchless; Codegen.Plain ]
  in
  List.iter Ir_compile.reset progs;
  let rng = Cftcg_util.Rng.create 21L in
  for _ = 1 to 300 do
    let u = Cftcg_util.Rng.float rng 20.0 -. 10.0 in
    let i = Cftcg_util.Rng.int_in rng (-2) 5 in
    List.iter (fun c -> drive_compiled c [ vf u; vi Dtype.Int32 i ]) progs;
    match progs with
    | [ a; b; c ] ->
      let va = Value.to_float (Ir_compile.get_output a 0) in
      let vb = Value.to_float (Ir_compile.get_output b 0) in
      let vc = Value.to_float (Ir_compile.get_output c 0) in
      Alcotest.(check (float 1e-9)) "full = branchless" va vb;
      Alcotest.(check (float 1e-9)) "full = plain" va vc
    | _ -> assert false
  done

(* Differential property: on every fixture, the reference evaluator
   and the closure compiler agree over random typed input streams. *)
let differential_fixture name mk =
  let m = mk () in
  let p = Codegen.lower m in
  let e = Ir_eval.create p in
  let c = Ir_compile.compile p in
  Ir_eval.reset e;
  Ir_compile.reset c;
  let rng = Cftcg_util.Rng.create 77L in
  let gen_input (var : Ir.var) =
    let ty = var.Ir.vty in
    match ty with
    | Dtype.Bool -> Value.of_bool (Cftcg_util.Rng.bool rng)
    | ty when Dtype.is_integer ty ->
      Value.of_int ty (Cftcg_util.Rng.int_in rng (-1000) 1000)
    | ty -> Value.of_float ty (Cftcg_util.Rng.float rng 40.0 -. 20.0)
  in
  for step = 1 to 400 do
    Array.iteri
      (fun i var ->
        let v = gen_input var in
        Ir_eval.set_input e i v;
        Ir_compile.set_input c i v)
      p.Ir.inputs;
    Ir_eval.step e;
    Ir_compile.step c;
    Array.iteri
      (fun i _ ->
        let ve = Value.to_float (Ir_eval.get_output e i) in
        let vc = Value.to_float (Ir_compile.get_output c i) in
        if ve <> vc && not (Float.is_nan ve && Float.is_nan vc) then
          Alcotest.failf "%s: output %d diverges at step %d: eval=%.17g compiled=%.17g" name i step
            ve vc)
      p.Ir.outputs
  done

let test_differential_all_fixtures () =
  List.iter
    (fun (name, mk) -> differential_fixture name mk)
    [ ("arith", Fixtures.arith_model); ("feedback", Fixtures.feedback_model);
      ("chart", Fixtures.chart_model); ("logic", Fixtures.logic_model);
      ("enabled", Fixtures.enabled_model); ("triggered", Fixtures.triggered_model); ("kitchen sink", Fixtures.kitchen_sink_model) ]

let test_lower_rejects_invalid () =
  let blocks =
    [| { Graph.bid = 0; block_name = "u"; kind = Graph.Inport { port_index = 1; port_dtype = Dtype.Float64 } };
       { Graph.bid = 1; block_name = "add"; kind = Graph.Sum "++" };
       { Graph.bid = 2; block_name = "y"; kind = Graph.Outport { port_index = 1 } } |]
  in
  let lines =
    [| { Graph.src_block = 0; src_port = 0; dst_block = 1; dst_port = 0 };
       { Graph.src_block = 1; src_port = 0; dst_block = 2; dst_port = 0 } |]
  in
  let m = { Graph.model_name = "Bad"; blocks; lines } in
  match Codegen.lower m with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "lowered a model with an unconnected input"

let test_multiport_switch_clamps () =
  let b = Build.create "MP" in
  let sel = Build.inport b "sel" Dtype.Int32 in
  let d1 = Build.const_f b 10.0 in
  let d2 = Build.const_f b 20.0 in
  let d3 = Build.const_f b 30.0 in
  let y = Build.multiport_switch b sel [ d1; d2; d3 ] in
  Build.outport b "y" y;
  let m = Build.finish b in
  let _, _, c = compile_eval_pair m in
  Ir_compile.reset c;
  let check sel expected =
    drive_compiled c [ vi Dtype.Int32 sel ];
    Alcotest.(check (float 0.0))
      (Printf.sprintf "sel=%d" sel)
      expected
      (Value.to_float (Ir_compile.get_output c 0))
  in
  check 1 10.0;
  check 2 20.0;
  check 3 30.0;
  check 0 10.0;
  (* below range clamps to first *)
  check 99 30.0 (* above range clamps to last *)

let test_type_inference_int_pipeline () =
  (* int8 + int8 promoted, then saturated, stays int-typed; codegen
     should wrap like C *)
  let b = Build.create "IntPipe" in
  let u = Build.inport b "u" Dtype.Int8 in
  let v2 = Build.inport b "v" Dtype.Int8 in
  let s = Build.sum b [ u; v2 ] in
  Build.outport b "y" s;
  let m = Build.finish b in
  let p = Codegen.lower m in
  Alcotest.(check string) "output is int8" "int8" (Dtype.name p.Ir.outputs.(0).Ir.vty);
  let c = Ir_compile.compile p in
  Ir_compile.reset c;
  drive_compiled c [ vi Dtype.Int8 127; vi Dtype.Int8 1 ];
  Alcotest.(check (float 0.0)) "wraps" (-128.0) (Value.to_float (Ir_compile.get_output c 0))

let suites =
  [ ( "codegen.semantics",
      [ Alcotest.test_case "arith" `Quick test_arith_semantics;
        Alcotest.test_case "integrator" `Quick test_integrator_accumulates_and_saturates;
        Alcotest.test_case "chart" `Quick test_chart_behaviour;
        Alcotest.test_case "enabled subsystem holds" `Quick test_enabled_subsystem_holds_output;
        Alcotest.test_case "logic truth table" `Quick test_logic_model_truth_table;
        Alcotest.test_case "multiport clamps" `Quick test_multiport_switch_clamps;
        Alcotest.test_case "int pipeline wraps" `Quick test_type_inference_int_pipeline;
        Alcotest.test_case "rejects invalid model" `Quick test_lower_rejects_invalid ] );
    ( "codegen.instrumentation",
      [ Alcotest.test_case "probe counts per mode" `Quick test_instrumentation_counts;
        Alcotest.test_case "modes agree semantically" `Quick test_modes_agree_semantically ] );
    ( "codegen.differential",
      [ Alcotest.test_case "eval = compiled on all fixtures" `Slow test_differential_all_fixtures ]
    ) ]
