(* Tests for the Cftcg_obs observability layer: metrics registry +
   Prometheus exposition, trace spans + Chrome export, the Figure-7
   coverage series, and the end-to-end guarantees the fuzzing layers
   promise — same-seed byte-parity with observability on vs off, and
   the VM profile agreeing with the reference dispatch counter. *)

open Cftcg_model
module Metrics = Cftcg_obs.Metrics
module Trace = Cftcg_obs.Trace
module Series = Cftcg_obs.Series
module Log = Cftcg_obs.Log
module Flight = Cftcg_obs.Flight
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Campaign = Cftcg_campaign.Campaign
module Telemetry = Cftcg_campaign.Telemetry
module Models = Cftcg_bench_models.Bench_models

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let solar_pv () =
  let e = Option.get (Models.find "SolarPV") in
  Codegen.lower ~mode:Codegen.Full (Lazy.force e.Models.model)

(* every test leaves the process-global observability state off *)
let with_obs_off f =
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_collect false;
      Trace.set_enabled false;
      Trace.clear ();
      Log.set_level None;
      Log.close_file ();
      Flight.set_enabled false;
      Flight.clear ())
    f

(* --- Metrics --- *)

let test_metrics_counter () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "requests_total" in
  Metrics.inc c;
  Metrics.add c 4;
  Alcotest.(check int) "counted" 5 (Metrics.value c);
  (* same name + labels: the same instrument *)
  let c' = Metrics.counter ~registry:r "requests_total" in
  Metrics.inc c';
  Alcotest.(check int) "interned" 6 (Metrics.value c);
  (* different labels: independent *)
  let c2 = Metrics.counter ~registry:r ~labels:[ ("k", "v") ] "requests_total" in
  Alcotest.(check int) "labelled is separate" 0 (Metrics.value c2)

let test_metrics_kind_mismatch () =
  let r = Metrics.create () in
  ignore (Metrics.counter ~registry:r "thing");
  match Metrics.gauge ~registry:r "thing" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "same name as a different kind must be rejected"

let test_metrics_prometheus () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"total things" ~labels:[ ("s", "a\"b\\c\nd") ] "things_total" in
  Metrics.add c 3;
  let g = Metrics.gauge ~registry:r ~help:"a gauge" "speed" in
  Metrics.set g 1.5;
  let h = Metrics.histogram ~registry:r ~buckets:[| 10.0; 100.0 |] "lat" in
  Metrics.observe h 5.0;
  Metrics.observe h 50.0;
  Metrics.observe h 500.0;
  let out = Metrics.to_prometheus r in
  Alcotest.(check bool) "help" true (contains "# HELP things_total total things" out);
  Alcotest.(check bool) "type counter" true (contains "# TYPE things_total counter" out);
  Alcotest.(check bool) "label escaped" true
    (contains "things_total{s=\"a\\\"b\\\\c\\nd\"} 3" out);
  Alcotest.(check bool) "gauge" true (contains "speed 1.5" out);
  (* histogram buckets are cumulative, +Inf implied *)
  Alcotest.(check bool) "bucket 10" true (contains "lat_bucket{le=\"10\"} 1" out);
  Alcotest.(check bool) "bucket 100" true (contains "lat_bucket{le=\"100\"} 2" out);
  Alcotest.(check bool) "bucket inf" true (contains "lat_bucket{le=\"+Inf\"} 3" out);
  Alcotest.(check bool) "count" true (contains "lat_count 3" out);
  Alcotest.(check bool) "sum" true (contains "lat_sum 555" out);
  Alcotest.(check int) "histogram_count" 3 (Metrics.histogram_count h);
  (* deterministic: exporting twice gives the same text *)
  Alcotest.(check string) "stable" out (Metrics.to_prometheus r)

(* exposition-format 0.0.4: label values escape backslash, quote and
   newline; HELP text escapes only backslash and newline *)
let test_metrics_adversarial_escaping () =
  let r = Metrics.create () in
  let adversarial = "q\"uo\\te\nnl\ttab" in
  let c = Metrics.counter ~registry:r ~help:"back\\slash and\nnewline" ~labels:[ ("v", adversarial) ] "adv_total" in
  Metrics.inc c;
  let out = Metrics.to_prometheus r in
  Alcotest.(check bool) "help escaped" true
    (contains "# HELP adv_total back\\\\slash and\\nnewline" out);
  Alcotest.(check bool) "label escaped" true
    (contains "adv_total{v=\"q\\\"uo\\\\te\\nnl\ttab\"} 1" out);
  (* an empty label value and a value that is only escapes round-trip *)
  let c2 = Metrics.counter ~registry:r ~labels:[ ("a", ""); ("b", "\\\n\"") ] "adv2_total" in
  Metrics.inc c2;
  let out2 = Metrics.to_prometheus r in
  Alcotest.(check bool) "empty + all-escape values" true
    (contains "adv2_total{a=\"\",b=\"\\\\\\n\\\"\"} 1" out2)

let test_metrics_clear () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "x_total" in
  Metrics.inc c;
  Metrics.clear r;
  Alcotest.(check bool) "gone from export" false (contains "x_total" (Metrics.to_prometheus r));
  (* the old handle keeps working without crashing *)
  Metrics.inc c;
  Alcotest.(check int) "handle survives" 2 (Metrics.value c)

(* --- Trace --- *)

let test_trace_disabled_is_passthrough () =
  with_obs_off @@ fun () ->
  Trace.clear ();
  let v = Trace.with_span "nope" (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 v;
  Trace.instant "nope";
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()))

let test_trace_records_spans () =
  with_obs_off @@ fun () ->
  Trace.clear ();
  Trace.set_enabled true;
  let v = Trace.with_span "outer" (fun () -> Trace.with_span "inner" (fun () -> 7)) in
  Trace.instant ~args:[ ("k", "v") ] "marker";
  Trace.set_enabled false;
  Alcotest.(check int) "result" 7 v;
  let evs = Trace.events () in
  Alcotest.(check (list string)) "names, oldest first" [ "inner"; "outer"; "marker" ]
    (List.map (fun e -> e.Trace.ev_name) evs);
  List.iter
    (fun e ->
      Alcotest.(check bool) "ts >= 0" true (e.Trace.ev_ts_us >= 0.0);
      Alcotest.(check bool) "dur >= 0" true (e.Trace.ev_dur_us >= 0.0))
    evs;
  let json = Trace.to_chrome () in
  Alcotest.(check bool) "complete event" true (contains "\"ph\":\"X\"" json);
  Alcotest.(check bool) "instant event" true (contains "\"ph\":\"i\"" json);
  Alcotest.(check bool) "args" true (contains "\"args\":{\"k\":\"v\"}" json);
  Alcotest.(check bool) "array" true (json.[0] = '[');
  Trace.clear ();
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events ()))

let test_trace_span_survives_raise () =
  with_obs_off @@ fun () ->
  Trace.clear ();
  Trace.set_enabled true;
  (try Trace.with_span "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  Trace.set_enabled false;
  Alcotest.(check (list string)) "recorded anyway" [ "boom" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events ()))

(* --- Series --- *)

let test_series_collapses_flat_points () =
  let s = Series.create ~probes_total:20 () in
  Series.record s ~time:0.1 ~execs:10 ~covered:3;
  Series.record s ~time:0.2 ~execs:20 ~covered:3;  (* flat: slides forward *)
  Series.record s ~time:0.3 ~execs:30 ~covered:8;
  let pts = Series.points s in
  Alcotest.(check int) "corners only" 2 (List.length pts);
  let last = List.nth pts 1 in
  Alcotest.(check int) "covered" 8 last.Series.pt_covered;
  let first = List.hd pts in
  Alcotest.(check int) "flat point slid to latest exec" 20 first.Series.pt_execs;
  let csv = Series.to_csv s in
  Alcotest.(check bool) "total comment" true (contains "# probes_total=20" csv);
  Alcotest.(check bool) "header" true (contains "time_s,execs,probes_covered" csv);
  Alcotest.(check bool) "row" true (contains "0.300000,30,8" csv)

let test_series_set_probes_total () =
  let s = Series.create () in
  Alcotest.(check bool) "unknown" true (Series.probes_total s = None);
  Series.set_probes_total s 99;
  Alcotest.(check bool) "set later" true (Series.probes_total s = Some 99)

(* --- byte-parity: observability must not perturb campaigns --- *)

let suite_bytes (r : Fuzzer.result) =
  List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) r.Fuzzer.test_suite

let test_fuzzer_parity_obs_on_off () =
  with_obs_off @@ fun () ->
  let prog = solar_pv () in
  let config = { Fuzzer.default_config with Fuzzer.seed = 77L } in
  let run () = Fuzzer.run ~config prog (Fuzzer.Exec_budget 3000) in
  Metrics.set_collect false;
  Trace.set_enabled false;
  let off = run () in
  Metrics.set_collect true;
  Trace.set_enabled true;
  let series = Series.create () in
  let on = Fuzzer.run ~config ~coverage_series:series prog (Fuzzer.Exec_budget 3000) in
  Alcotest.(check (list bytes)) "same suite bytes" (suite_bytes off) (suite_bytes on);
  Alcotest.(check int) "same executions" off.Fuzzer.stats.Fuzzer.executions
    on.Fuzzer.stats.Fuzzer.executions;
  Alcotest.(check int) "same coverage" off.Fuzzer.stats.Fuzzer.probes_covered
    on.Fuzzer.stats.Fuzzer.probes_covered;
  (* and the instrumentation actually observed the run *)
  let execs = Metrics.value (Metrics.counter "cftcg_fuzz_executions_total") in
  Alcotest.(check bool) "executions counted" true (execs >= 3000);
  Alcotest.(check bool) "series non-empty" true (Series.points series <> []);
  let last = List.nth (Series.points series) (List.length (Series.points series) - 1) in
  Alcotest.(check int) "series ends at final coverage" on.Fuzzer.stats.Fuzzer.probes_covered
    last.Series.pt_covered

let test_campaign_parity_obs_on_off () =
  with_obs_off @@ fun () ->
  let prog = solar_pv () in
  let ccfg =
    { Campaign.default_config with
      Campaign.jobs = 2;
      seed = 5L;
      total_execs = 4000;
      execs_per_epoch = 500;
      stop_on_full = false
    }
  in
  Metrics.set_collect false;
  Trace.set_enabled false;
  let off = Campaign.run ~config:ccfg prog in
  Metrics.set_collect true;
  Trace.set_enabled true;
  let series = Series.create () in
  let on =
    Campaign.run
      ~config:
        { ccfg with
          Campaign.sink =
            Telemetry.multi [ Telemetry.metrics_bridge (); Telemetry.series_bridge series ]
        }
      prog
  in
  Alcotest.(check (list bytes)) "same merged suite" off.Campaign.suite on.Campaign.suite;
  Alcotest.(check int) "same executions" off.Campaign.executions on.Campaign.executions;
  Alcotest.(check int) "same coverage" off.Campaign.probes_covered on.Campaign.probes_covered;
  Alcotest.(check bool) "epoch series recorded" true (Series.points series <> []);
  let epochs = Metrics.value (Metrics.counter "cftcg_campaign_epochs_total") in
  Alcotest.(check int) "bridge counted epochs" (List.length on.Campaign.epochs) epochs

(* --- byte-parity: logging must not perturb campaigns either --- *)

let with_logging_on f =
  let path = Filename.temp_file "cftcg_log" ".jsonl" in
  Log.set_level (Some Log.Debug);
  Flight.set_enabled true;
  Log.open_file path;
  Fun.protect
    ~finally:(fun () ->
      Log.set_level None;
      Log.close_file ();
      Flight.set_enabled false;
      Flight.clear ();
      Sys.remove path)
    (fun () -> f path)

let test_fuzzer_parity_log_on_off () =
  with_obs_off @@ fun () ->
  let prog = solar_pv () in
  let config = { Fuzzer.default_config with Fuzzer.seed = 78L } in
  let run () = Fuzzer.run ~config prog (Fuzzer.Exec_budget 3000) in
  let off = run () in
  let on = with_logging_on (fun _ -> run ()) in
  Alcotest.(check (list bytes)) "same suite bytes" (suite_bytes off) (suite_bytes on);
  Alcotest.(check int) "same executions" off.Fuzzer.stats.Fuzzer.executions
    on.Fuzzer.stats.Fuzzer.executions;
  Alcotest.(check int) "same coverage" off.Fuzzer.stats.Fuzzer.probes_covered
    on.Fuzzer.stats.Fuzzer.probes_covered

let test_campaign_parity_log_on_off () =
  with_obs_off @@ fun () ->
  let prog = solar_pv () in
  let ccfg =
    { Campaign.default_config with
      Campaign.jobs = 2;
      seed = 6L;
      total_execs = 4000;
      execs_per_epoch = 500;
      stop_on_full = false;
      job = Some "parity"
    }
  in
  let off = Campaign.run ~config:ccfg prog in
  let on, logged =
    with_logging_on (fun path ->
        let r = Campaign.run ~config:ccfg prog in
        Log.close_file ();
        let ic = open_in path in
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        close_in ic;
        (r, !n))
  in
  Alcotest.(check (list bytes)) "same merged suite" off.Campaign.suite on.Campaign.suite;
  Alcotest.(check int) "same executions" off.Campaign.executions on.Campaign.executions;
  Alcotest.(check int) "same coverage" off.Campaign.probes_covered on.Campaign.probes_covered;
  (* the logged run actually logged something *)
  Alcotest.(check bool) "log lines written" true (logged > 0)

(* --- VM profile mode --- *)

let test_vm_profile_matches_reference () =
  let prog = solar_pv () in
  let layout = Layout.of_program prog in
  let rng = Cftcg_util.Rng.create 3L in
  let data =
    Bytes.concat Bytes.empty (List.init 32 (fun _ -> Layout.random_tuple_bytes layout rng))
  in
  let rows =
    Array.init 32 (fun tuple ->
        Array.map
          (fun (f : Layout.field) ->
            Value.decode_float f.Layout.f_ty data
              ((tuple * layout.Layout.tuple_len) + f.Layout.f_offset))
          layout.Layout.fields)
  in
  let vm = Cftcg_ir.Ir_vm.compile prog in
  let bp = Cftcg_ir.Ir_vm.profile vm rows in
  let lin = Cftcg_ir.Ir_vm.linearized vm in
  Alcotest.(check int) "total = reference dynamic_count"
    (Cftcg_ir.Ir_opt.dynamic_count lin rows)
    bp.Cftcg_ir.Ir_opt.bp_dispatches;
  Alcotest.(check int) "init + step = total"
    bp.Cftcg_ir.Ir_opt.bp_dispatches
    (bp.Cftcg_ir.Ir_opt.bp_init_dispatches + bp.Cftcg_ir.Ir_opt.bp_step_dispatches);
  Alcotest.(check int) "opcode histogram sums to total" bp.Cftcg_ir.Ir_opt.bp_dispatches
    (Array.fold_left ( + ) 0 bp.Cftcg_ir.Ir_opt.bp_opcode_dyn);
  Alcotest.(check int) "init hits sum" bp.Cftcg_ir.Ir_opt.bp_init_dispatches
    (Array.fold_left ( + ) 0 bp.Cftcg_ir.Ir_opt.bp_init_hits);
  Alcotest.(check int) "step hits sum" bp.Cftcg_ir.Ir_opt.bp_step_dispatches
    (Array.fold_left ( + ) 0 bp.Cftcg_ir.Ir_opt.bp_step_hits);
  (* hit-annotated disassembly carries the counts *)
  let dis =
    Cftcg_ir.Ir_opt.disassemble
      ~hits:(bp.Cftcg_ir.Ir_opt.bp_init_hits, bp.Cftcg_ir.Ir_opt.bp_step_hits)
      lin
  in
  Alcotest.(check bool) "annotated" true (contains " x " dis);
  (* profiling must not disturb the VM instance *)
  let bp2 = Cftcg_ir.Ir_vm.profile vm rows in
  Alcotest.(check int) "repeatable" bp.Cftcg_ir.Ir_opt.bp_dispatches
    bp2.Cftcg_ir.Ir_opt.bp_dispatches

(* --- HTML report curve --- *)

let test_html_report_curve () =
  let prog = solar_pv () in
  let recorder = Cftcg_coverage.Recorder.create prog in
  let html =
    Cftcg_coverage.Html_report.render ~model_name:"SolarPV"
      ~coverage_curve:[ (0.0, 0); (1.5, 10); (4.0, 25) ]
      ~probes_total:40 recorder
  in
  Alcotest.(check bool) "has curve section" true (contains "Coverage over time" html);
  Alcotest.(check bool) "has svg" true (contains "<svg" html);
  Alcotest.(check bool) "axis shows total" true (contains ">40</text>" html);
  (* without a curve the section is absent *)
  let plain = Cftcg_coverage.Html_report.render ~model_name:"SolarPV" recorder in
  Alcotest.(check bool) "no curve section" false (contains "Coverage over time" plain)

let suites =
  [ ( "obs.metrics",
      [ Alcotest.test_case "counter" `Quick test_metrics_counter;
        Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
        Alcotest.test_case "prometheus exposition" `Quick test_metrics_prometheus;
        Alcotest.test_case "adversarial escaping" `Quick test_metrics_adversarial_escaping;
        Alcotest.test_case "clear" `Quick test_metrics_clear ] );
    ( "obs.trace",
      [ Alcotest.test_case "disabled passthrough" `Quick test_trace_disabled_is_passthrough;
        Alcotest.test_case "records nested spans" `Quick test_trace_records_spans;
        Alcotest.test_case "span survives raise" `Quick test_trace_span_survives_raise ] );
    ( "obs.series",
      [ Alcotest.test_case "collapses flat points" `Quick test_series_collapses_flat_points;
        Alcotest.test_case "set probes total" `Quick test_series_set_probes_total ] );
    ( "obs.parity",
      [ Alcotest.test_case "fuzzer byte-parity obs on/off" `Slow test_fuzzer_parity_obs_on_off;
        Alcotest.test_case "campaign byte-parity obs on/off" `Slow
          test_campaign_parity_obs_on_off;
        Alcotest.test_case "fuzzer byte-parity log on/off" `Slow test_fuzzer_parity_log_on_off;
        Alcotest.test_case "campaign byte-parity log on/off" `Slow
          test_campaign_parity_log_on_off ] );
    ( "obs.profile",
      [ Alcotest.test_case "vm profile matches reference" `Quick
          test_vm_profile_matches_reference ] );
    ( "obs.html",
      [ Alcotest.test_case "coverage curve svg" `Quick test_html_report_curve ] ) ]
