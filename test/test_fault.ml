(* Tests for the fault-tolerance layer: the deterministic injection
   harness itself, corpus-store quarantine/retry recovery, campaign
   worker-crash salvage, wall-clock deadlines, and the exact
   (rejection-sampled) Rng.int. *)

module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Campaign = Cftcg_campaign.Campaign
module Corpus_store = Cftcg_campaign.Corpus_store
module Telemetry = Cftcg_campaign.Telemetry
module Fault = Cftcg_util.Fault
module Rng = Cftcg_util.Rng
module Models = Cftcg_bench_models.Bench_models

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  dir

let solar_pv () =
  let e = Option.get (Models.find "SolarPV") in
  Codegen.lower ~mode:Codegen.Full (Lazy.force e.Models.model)

let ls dir = if Sys.file_exists dir then Array.to_list (Sys.readdir dir) else []

let tmp_files dir = List.filter (fun f -> Filename.check_suffix f ".tmp") (ls dir)

(* --- the harness itself --- *)

let test_parse_spec () =
  Alcotest.(check bool) "rates and nth" true
    (Fault.parse_spec "store_write=0.25,store_rename@2,exec_stall"
    = [ (Fault.Store_write, Fault.Rate 0.25);
        (Fault.Store_rename, Fault.Nth 2);
        (Fault.Exec_stall, Fault.Rate 1.0) ]);
  List.iter
    (fun bad ->
      match Fault.parse_spec bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail ("accepted bad spec " ^ bad))
    [ "no_such_point"; "store_write=nope"; "worker_raise@0"; "store_write=1.5"; "" ]

let test_nth_fires_exactly_once () =
  Fault.with_armed [ (Fault.Worker_raise, Fault.Nth 3) ] @@ fun () ->
  let fired = List.init 10 (fun _ -> Fault.fire Fault.Worker_raise) in
  Alcotest.(check (list bool)) "only the 3rd check"
    [ false; false; true; false; false; false; false; false; false; false ]
    fired;
  Alcotest.(check int) "hits counted" 10 (Fault.hits Fault.Worker_raise);
  Alcotest.(check int) "one injection" 1 (Fault.injected Fault.Worker_raise)

let test_rate_schedule_deterministic () =
  let draw () =
    Fault.with_armed ~seed:99L [ (Fault.Store_write, Fault.Rate 0.5) ] @@ fun () ->
    List.init 200 (fun _ -> Fault.fire Fault.Store_write)
  in
  let a = draw () and b = draw () in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Printf.sprintf "roughly the rate (%d/200)" fired)
    true
    (fired > 50 && fired < 150)

let test_disarmed_is_noop () =
  Fault.disarm ();
  Alcotest.(check bool) "disarmed" false (Fault.armed ());
  Alcotest.(check bool) "fire is false" false (Fault.fire Fault.Exec_stall);
  Fault.check Fault.Store_write (* must not raise *)

let test_with_armed_restores_on_exception () =
  (match
     Fault.with_armed [ (Fault.Store_write, Fault.Rate 1.0) ] (fun () -> failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check bool) "disarmed after raise" false (Fault.armed ())

(* --- corpus store under injected faults --- *)

let test_write_retries_transient_fault () =
  let dir = fresh_dir "cftcg_fault_retry" in
  Fault.with_armed [ (Fault.Store_write, Fault.Nth 1) ] (fun () ->
      let s = Corpus_store.open_ dir in
      (* the first write attempt fails; the bounded retry succeeds *)
      match Corpus_store.add s ~fingerprint:"00000000000000aa" ~metric:1 (Bytes.of_string "x") with
      | `Added -> ()
      | _ -> Alcotest.fail "add did not succeed after retry");
  Alcotest.(check int) "injected once" 1 (Fault.injected Fault.Store_write);
  let entries = Filename.concat dir "entries" in
  Alcotest.(check (list string)) "no tmp leaked" [] (tmp_files entries);
  let s2 = Corpus_store.open_ dir in
  Alcotest.(check bool) "entry readable" true (Corpus_store.mem s2 "00000000000000aa");
  rm_rf dir

let test_write_failure_leaks_nothing () =
  (* every attempt fails: the exception propagates, but no temp file
     or index entry is left behind, and a later retry just works *)
  let dir = fresh_dir "cftcg_fault_leak" in
  let s = Corpus_store.open_ dir in
  List.iter
    (fun point ->
      Fault.with_armed [ (point, Fault.Rate 1.0) ] (fun () ->
          match Corpus_store.add s ~fingerprint:"00000000000000bb" ~metric:1 (Bytes.of_string "y") with
          | exception Fault.Injected _ -> ()
          | _ -> Alcotest.fail "add must fail when every attempt is injected");
      let entries = Filename.concat dir "entries" in
      Alcotest.(check (list string))
        (Fault.point_name point ^ ": no tmp leaked")
        [] (tmp_files entries);
      Alcotest.(check bool)
        (Fault.point_name point ^ ": index unchanged")
        false
        (Corpus_store.mem s "00000000000000bb"))
    [ Fault.Store_write; Fault.Store_rename ];
  (match Corpus_store.add s ~fingerprint:"00000000000000bb" ~metric:1 (Bytes.of_string "y") with
  | `Added -> ()
  | _ -> Alcotest.fail "disarmed add must succeed");
  rm_rf dir

let test_corrupt_manifest_recovery () =
  let dir = fresh_dir "cftcg_fault_manifest" in
  let s = Corpus_store.open_ dir in
  ignore (Corpus_store.add s ~fingerprint:"00000000000000c1" ~metric:3 (Bytes.of_string "one"));
  ignore (Corpus_store.add s ~fingerprint:"00000000000000c2" ~metric:5 (Bytes.of_string "two"));
  Corpus_store.save_manifest s
    { Corpus_store.m_seed = 1L; m_jobs = 2; m_epoch = 1; m_executions = 100;
      m_probes_total = 8; m_coverage = Bytes.make 8 '\001' };
  (* smash the manifest *)
  let oc = open_out (Filename.concat dir "manifest") in
  output_string oc "this is not a manifest\n\000\255garbage";
  close_out oc;
  let salvage_lines = ref [] in
  let s2 = Corpus_store.open_ ~on_salvage:(fun m -> salvage_lines := m :: !salvage_lines) dir in
  Alcotest.(check bool) "salvage callback fired" true (!salvage_lines <> []);
  Alcotest.(check bool) "salvaged recorded on handle" true (Corpus_store.salvaged s2 <> []);
  Alcotest.(check bool) "manifest quarantined" true
    (Sys.file_exists (Filename.concat dir "manifest.corrupt-0"));
  Alcotest.(check (option reject)) "accounting gone" None (Corpus_store.load_manifest s2);
  Alcotest.(check int) "entries recovered" 2 (Corpus_store.size s2);
  Alcotest.(check (list bytes)) "payloads intact"
    [ Bytes.of_string "one"; Bytes.of_string "two" ]
    (Corpus_store.entries s2);
  (* a campaign pointed at the damaged dir with --resume must not
     crash: it degrades to a fresh campaign seeded from the entries *)
  let r =
    Campaign.run
      ~config:
        { Campaign.default_config with
          Campaign.jobs = 2;
          seed = 11L;
          total_execs = 600;
          execs_per_epoch = 150;
          corpus_dir = Some dir;
          resume = true
        }
      (solar_pv ())
  in
  Alcotest.(check bool) "not flagged as resumed" false r.Campaign.resumed;
  Alcotest.(check bool) "campaign completes" true (r.Campaign.executions > 0);
  rm_rf dir

let test_fsck_quarantines_damage () =
  let dir = fresh_dir "cftcg_fault_fsck" in
  let s = Corpus_store.open_ dir in
  ignore (Corpus_store.add s ~fingerprint:"00000000000000d1" ~metric:1 (Bytes.of_string "ok"));
  Corpus_store.save_manifest s
    { Corpus_store.m_seed = 1L; m_jobs = 1; m_epoch = 1; m_executions = 10;
      m_probes_total = 4; m_coverage = Bytes.make 4 '\000' };
  (* orphan: a valid entry the manifest does not know about *)
  ignore (Corpus_store.add s ~fingerprint:"00000000000000d2" ~metric:1 (Bytes.of_string "orphan"));
  let entries = Filename.concat dir "entries" in
  let spill name content =
    let oc = open_out (Filename.concat entries name) in
    output_string oc content;
    close_out oc
  in
  spill "00000000000000d3.tc.tmp" "half-written";
  spill "not-a-fp.tc" "junk";
  spill "00000000000000d4.tc" "";
  let report = Corpus_store.fsck dir in
  Alcotest.(check int) "three quarantines" 3 (List.length report.Corpus_store.fsck_quarantined);
  Alcotest.(check int) "valid entries survive" 2 report.Corpus_store.fsck_entries;
  Alcotest.(check int) "orphan counted" 1 report.Corpus_store.fsck_orphans;
  Alcotest.(check bool) "manifest ok" true (report.Corpus_store.fsck_manifest = `Ok);
  Alcotest.(check bool) "quarantine files exist" true
    (Sys.file_exists (Filename.concat entries "not-a-fp.tc.corrupt-0")
    && Sys.file_exists (Filename.concat entries "00000000000000d4.tc.corrupt-0"));
  (* now smash the manifest too: fsck quarantines it, never rebuilds *)
  let oc = open_out (Filename.concat dir "manifest") in
  output_string oc "garbage";
  close_out oc;
  let report = Corpus_store.fsck dir in
  Alcotest.(check bool) "manifest quarantined" true
    (report.Corpus_store.fsck_manifest = `Quarantined);
  Alcotest.(check bool) "no manifest left behind" false
    (Sys.file_exists (Filename.concat dir "manifest"));
  (* second pass: everything damaged is already quarantined *)
  let clean = Corpus_store.fsck dir in
  Alcotest.(check (list string)) "clean pass" [] clean.Corpus_store.fsck_quarantined;
  Alcotest.(check bool) "manifest now missing" true (clean.Corpus_store.fsck_manifest = `Missing);
  rm_rf dir

(* qcheck: whatever single-point damage the manifest suffers —
   truncation or a byte smashed at a random offset (a kill mid-persist
   at worst truncates, since writes are write-then-rename) — open_
   never raises and every entry survives *)
let prop_manifest_corruption_recovers =
  QCheck.Test.make ~name:"open_ survives arbitrary manifest damage" ~count:60
    QCheck.(make Gen.(triple bool (int_bound 5000) (int_bound 255)))
    (fun (truncate, pos, byte) ->
      let dir = fresh_dir "cftcg_fault_qcheck" in
      let s = Corpus_store.open_ dir in
      ignore (Corpus_store.add s ~fingerprint:"00000000000000e1" ~metric:2 (Bytes.of_string "p1"));
      ignore (Corpus_store.add s ~fingerprint:"00000000000000e2" ~metric:4 (Bytes.of_string "p2"));
      Corpus_store.save_manifest s
        { Corpus_store.m_seed = 7L; m_jobs = 2; m_epoch = 2; m_executions = 999;
          m_probes_total = 16; m_coverage = Bytes.make 16 '\001' };
      let mpath = Filename.concat dir "manifest" in
      let content = In_channel.with_open_bin mpath In_channel.input_all in
      let len = String.length content in
      let damaged =
        if truncate then String.sub content 0 (pos mod (len + 1))
        else begin
          let b = Bytes.of_string content in
          Bytes.set b (pos mod len) (Char.chr byte);
          Bytes.to_string b
        end
      in
      let oc = open_out_bin mpath in
      output_string oc damaged;
      close_out oc;
      let ok =
        match Corpus_store.open_ dir with
        | s2 ->
          Corpus_store.mem s2 "00000000000000e1"
          && Corpus_store.mem s2 "00000000000000e2"
          && Corpus_store.size s2 >= 2
        | exception _ -> false
      in
      rm_rf dir;
      ok)

(* --- campaign crash isolation --- *)

let crash_config ?(policy = Campaign.Degrade) ~sink seed =
  { Campaign.default_config with
    Campaign.jobs = 2;
    seed;
    total_execs = 2_000;
    execs_per_epoch = 500;
    sink;
    on_worker_crash = policy
  }

let test_worker_crash_salvage () =
  let prog = solar_pv () in
  let sink, contents = Telemetry.ring () in
  let r =
    Fault.with_armed [ (Fault.Worker_raise, Fault.Nth 1) ] @@ fun () ->
    Campaign.run ~config:(crash_config ~sink 13L) prog
  in
  Alcotest.(check int) "one crash salvaged" 1 r.Campaign.worker_crashes;
  Alcotest.(check bool) "campaign still terminates with results" true
    (r.Campaign.suite <> [] && r.Campaign.probes_covered > 0);
  let events = contents () in
  Alcotest.(check bool) "worker_crash event emitted" true
    (List.exists (function Telemetry.Worker_crash _ -> true | _ -> false) events);
  Alcotest.(check bool) "crash also reported as failure" true
    (List.exists
       (function
         | Telemetry.Failure { message; _ } ->
           String.length message >= 14 && String.sub message 0 14 = "worker crashed"
         | _ -> false)
       events)

let test_worker_crash_abort_policy () =
  let prog = solar_pv () in
  let sink, _ = Telemetry.ring () in
  match
    Fault.with_armed [ (Fault.Worker_raise, Fault.Nth 1) ] @@ fun () ->
    Campaign.run ~config:(crash_config ~policy:Campaign.Abort ~sink 13L) prog
  with
  | exception Campaign.Worker_crashed { epoch; _ } ->
    Alcotest.(check int) "crashed in the first epoch" 0 epoch
  | _ -> Alcotest.fail "abort policy must raise Worker_crashed"

let test_unarmed_runs_identical_around_armed_one () =
  (* arming and disarming the harness must leave zero residue: an
     unarmed campaign after a chaos run is byte-identical to one
     before it *)
  let prog = solar_pv () in
  let config =
    { Campaign.default_config with
      Campaign.jobs = 2;
      seed = 17L;
      total_execs = 1_000;
      execs_per_epoch = 250;
      stop_on_full = false;
      plateau_epochs = max_int
    }
  in
  let before = Campaign.run ~config prog in
  ignore
    (Fault.with_armed [ (Fault.Worker_raise, Fault.Nth 1) ] @@ fun () ->
     Campaign.run ~config prog);
  let after = Campaign.run ~config prog in
  Alcotest.(check bool) "identical results" true (before = after)

(* --- wall-clock deadlines --- *)

let test_wall_budget_identity_without_deadline () =
  let prog = solar_pv () in
  let run budget =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 23L } prog budget
  in
  let pure = run (Fuzzer.Exec_budget 1_500) in
  let wall = run (Fuzzer.Wall_budget { max_execs = 1_500; max_seconds = 3600.0 }) in
  Alcotest.(check bool) "byte-identical when the deadline does not fire" true (pure = wall)

let test_wall_budget_stops_stalled_run () =
  let prog = solar_pv () in
  let r =
    Fault.with_armed [ (Fault.Exec_stall, Fault.Rate 1.0) ] @@ fun () ->
    Fuzzer.run
      ~config:{ Fuzzer.default_config with Fuzzer.seed = 23L }
      prog
      (Fuzzer.Wall_budget { max_execs = 1_000_000; max_seconds = 0.15 })
  in
  Alcotest.(check bool)
    (Printf.sprintf "deadline cut the run short (%d execs)" r.Fuzzer.stats.Fuzzer.executions)
    true
    (r.Fuzzer.stats.Fuzzer.executions > 0 && r.Fuzzer.stats.Fuzzer.executions < 1_000_000)

let test_campaign_max_runtime () =
  let prog = solar_pv () in
  let r =
    Fault.with_armed [ (Fault.Exec_stall, Fault.Rate 1.0) ] @@ fun () ->
    Campaign.run
      ~config:
        { Campaign.default_config with
          Campaign.jobs = 2;
          seed = 29L;
          total_execs = 100_000;
          execs_per_epoch = 1_000;
          max_runtime = Some 0.3;
          stop_on_full = false;
          plateau_epochs = max_int
        }
      prog
  in
  Alcotest.(check bool)
    (Printf.sprintf "stopped by the wall clock (%d execs)" r.Campaign.executions)
    true
    (r.Campaign.executions > 0 && r.Campaign.executions < 100_000)

(* --- exact Rng.int (rejection sampling) --- *)

let test_rng_int_golden () =
  (* pinned stream: the rejection-sampling fix must not perturb
     common-case draws (the cutoff only rejects a vanishing sliver of
     the 62-bit space), so these values are stable across releases *)
  let r = Rng.create 42L in
  Alcotest.(check (list int)) "seed-42 bound-1000 stream"
    [ 605; 291; 954; 860; 250; 350; 925; 196 ]
    (List.init 8 (fun _ -> Rng.int r 1000))

let test_rng_int_uniform () =
  (* n = 3 is a worst case for modulo bias over a fixed-width draw;
     rejection sampling makes every residue exactly equally likely *)
  let r = Rng.create 1234L in
  let counts = Array.make 3 0 in
  let draws = 30_000 in
  for _ = 1 to draws do
    let v = Rng.int r 3 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "residue %d balanced (%d/%d)" i c draws)
        true
        (abs (c - (draws / 3)) < 500))
    counts

let test_rng_int_huge_bound () =
  (* bounds above 2^61 exercise the rejection path hard: the naive
     mask-mod would be visibly biased and a broken cutoff would loop
     or overflow *)
  let r = Rng.create 5L in
  let n = (1 lsl 61) + 1 in
  for _ = 1 to 1_000 do
    let v = Rng.int r n in
    Alcotest.(check bool) "in range" true (v >= 0 && v < n)
  done

let suites =
  [ ( "fault.harness",
      [ Alcotest.test_case "parse_spec" `Quick test_parse_spec;
        Alcotest.test_case "nth fires exactly once" `Quick test_nth_fires_exactly_once;
        Alcotest.test_case "rate schedule is seeded" `Quick test_rate_schedule_deterministic;
        Alcotest.test_case "disarmed is a no-op" `Quick test_disarmed_is_noop;
        Alcotest.test_case "with_armed restores on exception" `Quick
          test_with_armed_restores_on_exception ] );
    ( "fault.store",
      [ Alcotest.test_case "transient write fault is retried" `Quick
          test_write_retries_transient_fault;
        Alcotest.test_case "persistent write fault leaks nothing" `Quick
          test_write_failure_leaks_nothing;
        Alcotest.test_case "corrupt manifest is quarantined" `Slow test_corrupt_manifest_recovery;
        Alcotest.test_case "fsck quarantines damage" `Quick test_fsck_quarantines_damage;
        QCheck_alcotest.to_alcotest ~verbose:false prop_manifest_corruption_recovers ] );
    ( "fault.campaign",
      [ Alcotest.test_case "worker crash is salvaged" `Slow test_worker_crash_salvage;
        Alcotest.test_case "abort policy raises" `Slow test_worker_crash_abort_policy;
        Alcotest.test_case "arming leaves no residue" `Slow
          test_unarmed_runs_identical_around_armed_one ] );
    ( "fault.deadline",
      [ Alcotest.test_case "wall budget without deadline is exec budget" `Slow
          test_wall_budget_identity_without_deadline;
        Alcotest.test_case "wall budget stops a stalled run" `Slow
          test_wall_budget_stops_stalled_run;
        Alcotest.test_case "campaign --max-runtime" `Slow test_campaign_max_runtime ] );
    ( "fault.rng",
      [ Alcotest.test_case "golden stream" `Quick test_rng_int_golden;
        Alcotest.test_case "uniform residues" `Quick test_rng_int_uniform;
        Alcotest.test_case "huge bound" `Quick test_rng_int_huge_bound ] ) ]
