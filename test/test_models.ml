(* Integration tests over the eight Table-2 benchmark models:
   structural validity, lowering in every mode, graph-interpreter vs
   compiled-code agreement, SLX round-trips, and a fuzzing smoke test
   reaching a coverage floor. *)

open Cftcg_model
open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen
module Recorder = Cftcg_coverage.Recorder
module Models = Cftcg_bench_models.Bench_models
module Interp = Cftcg_interp.Interp
module Fuzzer = Cftcg_fuzz.Fuzzer

let models () = List.map (fun (e : Models.entry) -> (e.Models.name, Lazy.force e.Models.model)) Models.all

let test_all_valid () =
  List.iter
    (fun (name, m) ->
      match Graph.validate m with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" name msg)
    (models ())

let test_all_lower_all_modes () =
  List.iter
    (fun (name, m) ->
      List.iter
        (fun mode ->
          match Codegen.lower ~mode m with
          | p ->
            Alcotest.(check (result unit string))
              (Printf.sprintf "%s/%s IR valid" name (Codegen.mode_name mode))
              (Ok ()) (Ir.validate p)
          | exception Failure msg ->
            Alcotest.failf "%s/%s: %s" name (Codegen.mode_name mode) msg)
        [ Codegen.Full; Codegen.Branchless; Codegen.Plain ])
    (models ())

let test_branch_counts_positive () =
  List.iter
    (fun (e : Models.entry) ->
      let p = Codegen.lower (Lazy.force e.Models.model) in
      let branches = Recorder.branch_total p in
      let blocks = Graph.block_count (Lazy.force e.Models.model) in
      if branches < 20 then
        Alcotest.failf "%s: only %d branches — model too shallow" e.Models.name branches;
      if blocks < 20 then Alcotest.failf "%s: only %d blocks" e.Models.name blocks)
    Models.all

let test_slx_roundtrip () =
  List.iter
    (fun (name, m) ->
      let m' = Slx.load_string (Slx.save_string m) in
      Alcotest.(check bool) (name ^ " slx roundtrip") true (m = m'))
    (models ())

let random_value rng (ty : Dtype.t) =
  match ty with
  | Dtype.Bool -> Value.of_bool (Cftcg_util.Rng.bool rng)
  | ty when Dtype.is_integer ty ->
    (* mixed: small values mostly, occasional full-range *)
    if Cftcg_util.Rng.int rng 8 = 0 then
      Value.of_int ty (Cftcg_util.Rng.int_in rng (Dtype.min_int_value ty) (Dtype.max_int_value ty))
    else Value.of_int ty (Cftcg_util.Rng.int_in rng (-200) 200)
  | ty -> Value.of_float ty (Cftcg_util.Rng.float rng 300.0 -. 150.0)

let differential name m =
  let p = Codegen.lower ~mode:Codegen.Plain m in
  let compiled = Ir_compile.compile p in
  let interp = Interp.create m in
  Ir_compile.reset compiled;
  Interp.reset interp;
  let rng = Cftcg_util.Rng.create 2024L in
  let n_out = Array.length p.Ir.outputs in
  for step = 1 to 500 do
    Array.iteri
      (fun i (var : Ir.var) ->
        let v = random_value rng var.Ir.vty in
        Ir_compile.set_input compiled i v;
        Interp.set_input interp i v)
      p.Ir.inputs;
    Ir_compile.step compiled;
    Interp.step interp;
    for o = 0 to n_out - 1 do
      let vc = Value.to_float (Ir_compile.get_output compiled o) in
      let vi = Value.to_float (Interp.get_output interp o) in
      if vc <> vi && not (Float.is_nan vc && Float.is_nan vi) then
        Alcotest.failf "%s: output %d diverges at step %d: compiled=%.17g interp=%.17g" name o
          step vc vi
    done
  done

let test_interp_matches_compiled () =
  List.iter (fun (name, m) -> differential name m) (models ())

let test_fuzz_smoke () =
  (* a small campaign must clear a decision-coverage floor on every
     model: guards against unreachable instrumentation *)
  List.iter
    (fun (name, m) ->
      let prog = Codegen.lower m in
      let config = { Fuzzer.default_config with Fuzzer.seed = 7L } in
      let r = Fuzzer.run ~config prog (Fuzzer.Exec_budget 3000) in
      let suite = List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) r.Fuzzer.test_suite in
      let report = Cftcg.Evaluate.replay prog suite in
      if report.Recorder.decision_pct < 30.0 then
        Alcotest.failf "%s: fuzz smoke reached only %.1f%% decision coverage" name
          report.Recorder.decision_pct;
      if r.Fuzzer.stats.Fuzzer.iterations <= 0 then Alcotest.failf "%s: no iterations" name)
    (models ())

let test_deterministic_campaigns () =
  let m = Lazy.force (List.hd Models.all).Models.model in
  let prog = Codegen.lower m in
  let run () =
    let r = Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 99L } prog
        (Fuzzer.Exec_budget 500)
    in
    List.map (fun (tc : Fuzzer.test_case) -> Bytes.to_string tc.Fuzzer.tc_data) r.Fuzzer.test_suite
  in
  Alcotest.(check (list string)) "same seed, same suite" (run ()) (run ())

let suites =
  [ ( "models.integration",
      [ Alcotest.test_case "all valid" `Quick test_all_valid;
        Alcotest.test_case "lower all modes" `Quick test_all_lower_all_modes;
        Alcotest.test_case "branch counts" `Quick test_branch_counts_positive;
        Alcotest.test_case "slx roundtrip" `Quick test_slx_roundtrip;
        Alcotest.test_case "interp = compiled" `Slow test_interp_matches_compiled;
        Alcotest.test_case "fuzz smoke" `Slow test_fuzz_smoke;
        Alcotest.test_case "deterministic campaigns" `Quick test_deterministic_campaigns ] ) ]
