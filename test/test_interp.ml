(* Targeted tests for the graph interpreter beyond the differential
   suite: reset semantics, triggered subsystems, merge, delay lines. *)

open Cftcg_model
module B = Build
module Interp = Cftcg_interp.Interp

let vf = Value.of_float Dtype.Float64
let vb = Value.of_bool

let run_steps interp inputs_list =
  List.map
    (fun inputs ->
      List.iteri (fun i v -> Interp.set_input interp i v) inputs;
      Interp.step interp;
      Value.to_float (Interp.get_output interp 0))
    inputs_list

let test_delay_line () =
  let b = B.create "D" in
  let u = B.inport b "u" Dtype.Float64 in
  let d = B.delay b ~init:9. 3 u in
  B.outport b "y" d;
  let interp = Interp.create (B.finish b) in
  Interp.reset interp;
  let outs = run_steps interp (List.map (fun f -> [ vf f ]) [ 1.; 2.; 3.; 4.; 5. ]) in
  Alcotest.(check (list (float 0.0))) "3-deep delay with init" [ 9.; 9.; 9.; 1.; 2. ] outs

let test_reset_restores_initial_state () =
  let b = B.create "R" in
  let u = B.inport b "u" Dtype.Float64 in
  let acc = B.integrator b u in
  B.outport b "y" acc;
  let interp = Interp.create (B.finish b) in
  Interp.reset interp;
  let first = run_steps interp [ [ vf 5. ]; [ vf 5. ]; [ vf 5. ] ] in
  Interp.reset interp;
  let second = run_steps interp [ [ vf 5. ]; [ vf 5. ]; [ vf 5. ] ] in
  Alcotest.(check (list (float 0.0))) "reset replays identically" first second;
  Alcotest.(check (list (float 0.0))) "integrates" [ 0.; 5.; 10. ] first

let test_triggered_subsystem_rising_edge () =
  let inner =
    let b = B.create "Counter" in
    let u = B.inport b "u" Dtype.Float64 in
    let acc = B.integrator b ~gain:1.0 u in
    B.outport b "count" (B.bias b 1.0 acc);
    B.finish b
  in
  let b = B.create "Trig" in
  let trig = B.inport b "trig" Dtype.Bool in
  let one = B.const_f b 1.0 in
  let outs = B.subsystem b ~activation:(Graph.Triggered Graph.E_rising) inner [ trig; one ] in
  B.outport b "y" outs.(0);
  let interp = Interp.create (B.finish b) in
  Interp.reset interp;
  let outs =
    run_steps interp (List.map (fun bl -> [ vb bl ]) [ false; true; true; false; true ])
  in
  (* body runs only on rising edges (steps 2 and 5) *)
  Alcotest.(check (list (float 0.0))) "rising edges only" [ 0.; 1.; 1.; 1.; 2. ] outs

let test_merge_last_writer_wins () =
  let b = B.create "M" in
  let u1 = B.inport b "u1" Dtype.Float64 in
  let u2 = B.inport b "u2" Dtype.Float64 in
  let m = B.merge b [ u1; u2 ] in
  B.outport b "y" m;
  let interp = Interp.create (B.finish b) in
  Interp.reset interp;
  let outs =
    run_steps interp
      [ [ vf 1.; vf 0. ] (* u1 changes -> 1 *); [ vf 1.; vf 7. ] (* u2 changes -> 7 *);
        [ vf 1.; vf 7. ] (* nothing changes -> hold 7 *); [ vf 3.; vf 7. ] (* u1 -> 3 *) ]
  in
  Alcotest.(check (list (float 0.0))) "merge holds last writer" [ 1.; 7.; 7.; 3. ] outs

let test_chart_locals_persist () =
  let interp = Interp.create (Fixtures.chart_model ()) in
  Interp.reset interp;
  (* start -> busy for 3 steps -> idle *)
  let outs =
    run_steps interp (List.map (fun bl -> [ vb bl ]) [ true; false; false; false; false; true ])
  in
  Alcotest.(check (list (float 0.0))) "busy window then restart" [ 1.; 1.; 1.; 1.; 0.; 1. ] outs

let suites =
  [ ( "interp.semantics",
      [ Alcotest.test_case "delay line" `Quick test_delay_line;
        Alcotest.test_case "reset restores state" `Quick test_reset_restores_initial_state;
        Alcotest.test_case "triggered subsystem" `Quick test_triggered_subsystem_rising_edge;
        Alcotest.test_case "merge last writer" `Quick test_merge_last_writer_wins;
        Alcotest.test_case "chart timing" `Quick test_chart_locals_persist ] ) ]
