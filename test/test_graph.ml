(* Tests for the model graph: arity, validation, builder, scheduling. *)

open Cftcg_model
module B = Build
module Schedule = Cftcg_codegen.Schedule

let test_arity () =
  let check kind expected =
    Alcotest.(check (pair int int)) (Graph.kind_name kind) expected (Graph.arity kind)
  in
  check (Graph.Sum "+-") (2, 1);
  check (Graph.Product "**/") (3, 1);
  check (Graph.Logic (Graph.L_not, 1)) (1, 1);
  check (Graph.Logic (Graph.L_and, 3)) (3, 1);
  check (Graph.Switch (Graph.Ne_zero)) (3, 1);
  check (Graph.Multiport_switch 4) (5, 1);
  check (Graph.If_block 2) (2, 3);
  check (Graph.Chart_block (Fixtures.toggle_chart ())) (1, 1)

let test_builder_produces_valid_model () =
  let m = Fixtures.arith_model () in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Graph.validate m);
  Alcotest.(check int) "3 inports" 3 (Array.length (Graph.inports m));
  Alcotest.(check int) "2 outports" 2 (Array.length (Graph.outports m))

let test_inport_order () =
  let m = Fixtures.arith_model () in
  let names = Array.map fst (Graph.inports m) in
  Alcotest.(check (array string)) "port order" [| "u1"; "u2"; "ctl" |] names

let test_block_count_recurses () =
  let m = Fixtures.enabled_model () in
  (* top: 2 inports + subsystem + outport = 4; inner: inport+gain+outport = 3 *)
  Alcotest.(check int) "counts inner blocks" 7 (Graph.block_count m)

let test_unconnected_input_rejected () =
  let b = B.create "Bad" in
  let u = B.inport b "u" Dtype.Float64 in
  ignore (B.add b (Graph.Sum "++") [ u; u ]);
  (* Sum output left dangling is fine; but make a broken line set by
     hand to check validate *)
  let m = B.finish b in
  Alcotest.(check (result unit string)) "dangling output ok" (Ok ()) (Graph.validate m);
  let broken =
    { m with Graph.lines = Array.append m.Graph.lines [| { Graph.src_block = 0; src_port = 0; dst_block = 1; dst_port = 0 } |] }
  in
  match Graph.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double-driven input accepted"

let test_builder_arity_mismatch () =
  let b = B.create "Bad2" in
  let u = B.inport b "u" Dtype.Float64 in
  match B.add b (Graph.Sum "++") [ u ] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

let test_bad_params_rejected () =
  let mk kind =
    let b = B.create "P" in
    let u = B.inport b "u" Dtype.Float64 in
    let nin, _ = Graph.arity kind in
    ignore (B.add b kind (List.init nin (fun _ -> u)));
    B.finish b
  in
  let expect_invalid kind =
    match mk kind with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail ("accepted invalid " ^ Graph.kind_name kind)
  in
  expect_invalid (Graph.Sum "+x");
  expect_invalid (Graph.Saturation { sat_lower = 5.; sat_upper = 1. });
  expect_invalid (Graph.Lookup_1d { lut_xs = [| 1.; 1. |]; lut_ys = [| 0.; 0. |] });
  expect_invalid (Graph.Delay { delay_length = 0; delay_init = 0. })

let test_schedule_respects_dependencies () =
  let m = Fixtures.arith_model () in
  let order = Schedule.order_exn m in
  Alcotest.(check int) "all blocks scheduled" (Array.length m.Graph.blocks) (List.length order);
  let pos = Hashtbl.create 16 in
  List.iteri (fun i bid -> Hashtbl.replace pos bid i) order;
  Array.iter
    (fun (l : Graph.line) ->
      if not (Schedule.breaks_loop m.Graph.blocks.(l.Graph.src_block).Graph.kind) then
        Alcotest.(check bool) "src before dst" true
          (Hashtbl.find pos l.Graph.src_block < Hashtbl.find pos l.Graph.dst_block))
    m.Graph.lines

let test_algebraic_loop_detected () =
  (* u -> sum -> gain -> back to sum: combinational cycle *)
  let blocks =
    [| { Graph.bid = 0; block_name = "u"; kind = Graph.Inport { port_index = 1; port_dtype = Dtype.Float64 } };
       { Graph.bid = 1; block_name = "add"; kind = Graph.Sum "++" };
       { Graph.bid = 2; block_name = "g"; kind = Graph.Gain 0.5 };
       { Graph.bid = 3; block_name = "y"; kind = Graph.Outport { port_index = 1 } } |]
  in
  let lines =
    [| { Graph.src_block = 0; src_port = 0; dst_block = 1; dst_port = 0 };
       { Graph.src_block = 2; src_port = 0; dst_block = 1; dst_port = 1 };
       { Graph.src_block = 1; src_port = 0; dst_block = 2; dst_port = 0 };
       { Graph.src_block = 1; src_port = 0; dst_block = 3; dst_port = 0 } |]
  in
  let m = { Graph.model_name = "Loop"; blocks; lines } in
  Alcotest.(check (result unit string)) "structurally valid" (Ok ()) (Graph.validate m);
  match Schedule.order m with
  | Error msg ->
    Alcotest.(check bool) "mentions algebraic loop" true
      (String.length msg > 0
      && String.split_on_char ':' msg |> List.exists (fun s -> String.trim s = "algebraic loop through blocks"))
  | Ok _ -> Alcotest.fail "algebraic loop not detected"

let test_delay_breaks_loop () =
  (* same cycle but through a unit delay: must schedule *)
  let blocks =
    [| { Graph.bid = 0; block_name = "u"; kind = Graph.Inport { port_index = 1; port_dtype = Dtype.Float64 } };
       { Graph.bid = 1; block_name = "add"; kind = Graph.Sum "++" };
       { Graph.bid = 2; block_name = "z"; kind = Graph.Unit_delay 0.0 };
       { Graph.bid = 3; block_name = "y"; kind = Graph.Outport { port_index = 1 } } |]
  in
  let lines =
    [| { Graph.src_block = 0; src_port = 0; dst_block = 1; dst_port = 0 };
       { Graph.src_block = 2; src_port = 0; dst_block = 1; dst_port = 1 };
       { Graph.src_block = 1; src_port = 0; dst_block = 2; dst_port = 0 };
       { Graph.src_block = 1; src_port = 0; dst_block = 3; dst_port = 0 } |]
  in
  let m = { Graph.model_name = "DelayLoop"; blocks; lines } in
  match Schedule.order m with
  | Ok order -> Alcotest.(check int) "all scheduled" 4 (List.length order)
  | Error msg -> Alcotest.fail msg

let test_chart_validate () =
  let ch = Fixtures.toggle_chart () in
  Alcotest.(check (result unit string)) "valid chart" (Ok ()) (Chart.validate ch);
  let bad = { ch with Chart.init_state = 9 } in
  (match Chart.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bad init state accepted");
  let bad_guard =
    { ch with
      Chart.states =
        Array.map
          (fun (s : Chart.state) ->
            { s with Chart.outgoing = [ { Chart.guard = Chart.In 5; actions = []; dst = 0 } ] })
          ch.Chart.states
    }
  in
  match Chart.validate bad_guard with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range input accepted"

let test_chart_expr_string_roundtrip () =
  let open Chart in
  let exprs =
    [ in_ 0 >=: num 5.;
      (local 1 <: num 10.) &&: (out 0 =: num 1.);
      not_ (State_time >: num 3.);
      Bin (C_mod, in_ 2, num 4.);
      Un (C_abs, Un (C_neg, num 2.5)) ]
  in
  List.iter
    (fun e ->
      match expr_of_string (expr_to_string e) with
      | Ok e' -> Alcotest.(check bool) (expr_to_string e) true (e = e')
      | Error msg -> Alcotest.fail (expr_to_string e ^ ": " ^ msg))
    exprs

let test_chart_expr_parse_errors () =
  List.iter
    (fun s ->
      match Chart.expr_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad expr " ^ s))
    [ ""; "("; "(bogus 1 2)"; "(in x)"; "(ge 1)"; "(ge 1 2 3)"; "(in 0) extra" ]

let suites =
  [ ( "model.graph",
      [ Alcotest.test_case "arity" `Quick test_arity;
        Alcotest.test_case "builder valid" `Quick test_builder_produces_valid_model;
        Alcotest.test_case "inport order" `Quick test_inport_order;
        Alcotest.test_case "block_count recurses" `Quick test_block_count_recurses;
        Alcotest.test_case "double-driven input" `Quick test_unconnected_input_rejected;
        Alcotest.test_case "builder arity mismatch" `Quick test_builder_arity_mismatch;
        Alcotest.test_case "bad params rejected" `Quick test_bad_params_rejected ] );
    ( "codegen.schedule",
      [ Alcotest.test_case "respects dependencies" `Quick test_schedule_respects_dependencies;
        Alcotest.test_case "algebraic loop detected" `Quick test_algebraic_loop_detected;
        Alcotest.test_case "delay breaks loop" `Quick test_delay_breaks_loop ] );
    ( "model.chart",
      [ Alcotest.test_case "validate" `Quick test_chart_validate;
        Alcotest.test_case "expr roundtrip" `Quick test_chart_expr_string_roundtrip;
        Alcotest.test_case "expr parse errors" `Quick test_chart_expr_parse_errors ] ) ]
