(* Toolchain self-fuzzing over random diagrams: every execution path
   must agree on every random model, and every random model must
   survive SLX round-trips and optimization unchanged in behaviour. *)

open Cftcg_model
open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen
module Interp = Cftcg_interp.Interp
module Rng = Cftcg_util.Rng

let n_models = 120
let steps_per_model = 60

let agree name a b =
  if a <> b && not (Float.is_nan a && Float.is_nan b) then
    Alcotest.failf "%s: %.17g <> %.17g" name a b

let test_exec_paths_agree () =
  let rng = Rng.create 4242L in
  for model_ix = 1 to n_models do
    let m = Model_gen.generate rng in
    let prog = Codegen.lower m in
    let compiled = Ir_compile.compile prog in
    let evaluator = Ir_eval.create prog in
    let interp = Interp.create m in
    let optimized = Ir_compile.compile (Ir_opt.optimize prog) in
    Ir_compile.reset compiled;
    Ir_eval.reset evaluator;
    Interp.reset interp;
    Ir_compile.reset optimized;
    let n_out = Array.length prog.Ir.outputs in
    for step = 1 to steps_per_model do
      Array.iteri
        (fun i (var : Ir.var) ->
          let v = Model_gen.random_input rng var.Ir.vty in
          Ir_compile.set_input compiled i v;
          Ir_eval.set_input evaluator i v;
          Interp.set_input interp i v;
          Ir_compile.set_input optimized i v)
        prog.Ir.inputs;
      Ir_compile.step compiled;
      Ir_eval.step evaluator;
      Interp.step interp;
      Ir_compile.step optimized;
      for o = 0 to n_out - 1 do
        let reference = Value.to_float (Ir_compile.get_output compiled o) in
        let tag which =
          Printf.sprintf "model %d step %d output %d: compiled vs %s" model_ix step o which
        in
        agree (tag "evaluator") reference (Value.to_float (Ir_eval.get_output evaluator o));
        agree (tag "interpreter") reference (Value.to_float (Interp.get_output interp o));
        agree (tag "optimized") reference (Value.to_float (Ir_compile.get_output optimized o))
      done
    done
  done

let test_instrumentation_modes_agree () =
  (* Full / Branchless / Plain builds must be observably identical *)
  let rng = Rng.create 555L in
  for model_ix = 1 to 40 do
    let m = Model_gen.generate rng in
    let progs =
      List.map
        (fun mode -> Ir_compile.compile (Codegen.lower ~mode m))
        [ Codegen.Full; Codegen.Branchless; Codegen.Plain ]
    in
    List.iter Ir_compile.reset progs;
    let inputs = (Codegen.lower ~mode:Codegen.Plain m).Ir.inputs in
    for step = 1 to 40 do
      let vals = Array.map (fun (v : Ir.var) -> Model_gen.random_input rng v.Ir.vty) inputs in
      List.iter
        (fun c ->
          Array.iteri (fun i v -> Ir_compile.set_input c i v) vals;
          Ir_compile.step c)
        progs;
      match progs with
      | [ full; branchless; plain ] ->
        Array.iteri
          (fun o _ ->
            let f = Value.to_float (Ir_compile.get_output full o) in
            agree
              (Printf.sprintf "model %d step %d out %d full-vs-branchless" model_ix step o)
              f
              (Value.to_float (Ir_compile.get_output branchless o));
            agree
              (Printf.sprintf "model %d step %d out %d full-vs-plain" model_ix step o)
              f
              (Value.to_float (Ir_compile.get_output plain o)))
          (Ir_compile.program full).Ir.outputs
      | _ -> assert false
    done
  done

let test_guard_chains_well_formed () =
  let rng = Rng.create 888L in
  for _ = 1 to 60 do
    let prog = Codegen.lower (Model_gen.generate rng) in
    let chains = Cftcg_symexec.Guards.probe_chains prog in
    let n_ifs = Cftcg_symexec.Guards.n_ifs prog in
    Array.iter
      (fun chain ->
        List.iter
          (fun (if_ix, _) ->
            if if_ix < 0 || if_ix >= n_ifs then
              Alcotest.failf "guard chain references if %d of %d" if_ix n_ifs)
          chain)
      chains
  done

let test_slx_roundtrip_random () =
  let rng = Rng.create 77L in
  for _ = 1 to 200 do
    let m = Model_gen.generate rng in
    let m' = Slx.load_string (Slx.save_string m) in
    if m <> m' then Alcotest.failf "slx roundtrip broke model %s" m.Graph.model_name
  done

let test_random_models_fuzzable () =
  (* every random model supports an actual fuzzing campaign *)
  let rng = Rng.create 31337L in
  for _ = 1 to 15 do
    let m = Model_gen.generate rng in
    let prog = Codegen.lower m in
    let r =
      Cftcg_fuzz.Fuzzer.run
        ~config:{ Cftcg_fuzz.Fuzzer.default_config with Cftcg_fuzz.Fuzzer.seed = 5L }
        prog (Cftcg_fuzz.Fuzzer.Exec_budget 300)
    in
    Alcotest.(check bool) "campaign ran" true (r.Cftcg_fuzz.Fuzzer.stats.Cftcg_fuzz.Fuzzer.executions = 300)
  done

let suites =
  [ ( "random_models",
      [ Alcotest.test_case "all execution paths agree" `Slow test_exec_paths_agree;
        Alcotest.test_case "instrumentation modes agree" `Slow test_instrumentation_modes_agree;
        Alcotest.test_case "guard chains well-formed" `Quick test_guard_chains_well_formed;
        Alcotest.test_case "slx roundtrips" `Slow test_slx_roundtrip_random;
        Alcotest.test_case "fuzzable" `Slow test_random_models_fuzzable ] ) ]
