(* Additional C-emitter checks: saturating casts, driver layout
   against Figure 3, and emission stability across modes. *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Cemit = Cftcg_ir.Cemit

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_saturating_casts_emitted () =
  (* float -> int16 conversion must go through the saturation helper,
     not a raw C cast (undefined behaviour out of range) *)
  let b = B.create "CastM" in
  let u = B.inport b "u" Dtype.Float64 in
  B.outport b "y" (B.convert b Dtype.Int16 u);
  let prog = Codegen.lower ~mode:Codegen.Plain (B.finish b) in
  let c = Cemit.emit_program prog in
  Alcotest.(check bool) "uses cftcg_sat_i16" true (contains "cftcg_sat_i16(" c);
  Alcotest.(check bool) "helper defined" true (contains "CFTCG_SAT(cftcg_sat_i16" c)

let test_int_casts_stay_plain () =
  (* int -> int conversions are plain C casts (wrapping) *)
  let b = B.create "CastI" in
  let u = B.inport b "u" Dtype.Int32 in
  B.outport b "y" (B.convert b Dtype.Int8 u);
  let prog = Codegen.lower ~mode:Codegen.Plain (B.finish b) in
  let c = Cemit.emit_program prog in
  Alcotest.(check bool) "plain (int8_T) cast" true (contains "((int8_T)" c);
  Alcotest.(check bool) "no sat helper for int src" false (contains "cftcg_sat_i8(" c)

let test_driver_matches_figure3_shape () =
  (* the paper's SolarPV driver: dataLen 9, three memcpys at offsets
     0, 1, 5 with sizes 1, 4, 4 *)
  let e = Option.get (Cftcg_bench_models.Bench_models.find "SolarPV") in
  let prog = Codegen.lower (Lazy.force e.Cftcg_bench_models.Bench_models.model) in
  let d = Cemit.emit_fuzz_driver prog in
  Alcotest.(check bool) "dataLen 9" true (contains "const int dataLen = 9;" d);
  Alcotest.(check bool) "memcpy offset 0 size 1" true (contains "data + i * dataLen + 0, 1);" d);
  Alcotest.(check bool) "memcpy offset 1 size 4" true (contains "data + i * dataLen + 1, 4);" d);
  Alcotest.(check bool) "memcpy offset 5 size 4" true (contains "data + i * dataLen + 5, 4);" d)

let test_branchless_mode_has_ternaries () =
  let prog = Codegen.lower ~mode:Codegen.Branchless (Fixtures.logic_model ()) in
  let c = Cemit.emit_program prog in
  (* boolean logic compiles to expressions, not if/else: the only
     CoverageCondition occurrence is the extern declaration *)
  let count needle hay =
    let nl = String.length needle in
    let rec go i acc =
      if i + nl > String.length hay then acc
      else if String.sub hay i nl = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "no condition-record calls" 1 (count "CoverageCondition" c);
  Alcotest.(check int) "no decision-record calls" 1 (count "CoverageDecision" c);
  Alcotest.(check bool) "boolean operators inline" true (contains "&&" c)

let test_harness_compiles_shape () =
  let prog = Codegen.lower (Fixtures.arith_model ()) in
  let h = Cemit.emit_test_harness prog in
  Alcotest.(check bool) "has main" true (contains "int main(int argc, char **argv)" h);
  Alcotest.(check bool) "defines coverage stubs" true (contains "void CoverageStatistics(int branchId)" h);
  Alcotest.(check bool) "prints outputs" true (contains "%.17g" h)

let test_emission_deterministic_across_modes () =
  let m = Fixtures.kitchen_sink_model () in
  List.iter
    (fun mode ->
      let a = Cemit.emit_all (Codegen.lower ~mode m) in
      let b = Cemit.emit_all (Codegen.lower ~mode m) in
      Alcotest.(check bool) (Codegen.mode_name mode ^ " deterministic") true (a = b))
    [ Codegen.Full; Codegen.Branchless; Codegen.Plain ]

let suites =
  [ ( "cemit.details",
      [ Alcotest.test_case "saturating casts" `Quick test_saturating_casts_emitted;
        Alcotest.test_case "plain int casts" `Quick test_int_casts_stay_plain;
        Alcotest.test_case "Figure 3 driver shape" `Quick test_driver_matches_figure3_shape;
        Alcotest.test_case "branchless ternaries" `Quick test_branchless_mode_has_ternaries;
        Alcotest.test_case "harness shape" `Quick test_harness_compiles_shape;
        Alcotest.test_case "deterministic emission" `Quick test_emission_deterministic_across_modes
      ] ) ]
