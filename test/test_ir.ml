(* Tests for the IR: evaluator/compiler agreement, branch distance,
   the C emitter, and IR validation. *)

open Cftcg_model
open Cftcg_ir

let v name vid ty = { Ir.vid; vname = name; vty = ty }

(* Hand-built program: out = |x| saturated to [0, 5]; state s counts
   calls. Exercises If, Probe, casts, arithmetic. *)
let sample_program () =
  let x = v "x" 0 Dtype.Float64 in
  let y = v "y" 1 Dtype.Float64 in
  let s = v "s" 2 Dtype.Int32 in
  let t = v "t" 3 Dtype.Float64 in
  let dec =
    {
      Ir.dec_id = 0;
      dec_block = "sat";
      dec_desc = "saturation";
      n_outcomes = 2;
      outcome_probes = [| 0; 1 |];
      conditions = [| { Ir.cond_ix = 0; cond_desc = "hi"; probe_true = 2; probe_false = 3 } |];
    }
  in
  {
    Ir.prog_name = "sample";
    n_vars = 4;
    inputs = [| x |];
    outputs = [| y |];
    states = [| s |];
    init = [ Ir.Assign (s, Ir.int_const Dtype.Int32 0) ];
    step =
      [ Ir.Assign (t, Ir.Unop (Ir.U_abs, Ir.Read x));
        Ir.Record_cond { dec = 0; cond_ix = 0; value = Ir.Binop (Ir.B_gt, Dtype.Float64, Ir.Read t, Ir.float_const Dtype.Float64 5.0) };
        Ir.If
          {
            cond = Ir.Binop (Ir.B_gt, Dtype.Float64, Ir.Read t, Ir.float_const Dtype.Float64 5.0);
            dec = Some 0;
            then_ =
              [ Ir.Probe 0; Ir.Record_decision { dec = 0; outcome = 0 };
                Ir.Assign (y, Ir.float_const Dtype.Float64 5.0) ];
            else_ =
              [ Ir.Probe 1; Ir.Record_decision { dec = 0; outcome = 1 }; Ir.Assign (y, Ir.Read t) ];
          };
        Ir.Assign (s, Ir.Binop (Ir.B_add, Dtype.Int32, Ir.Read s, Ir.int_const Dtype.Int32 1)) ];
    n_probes = 4;
    decisions = [| dec |];
    assertions = [||];
    lookup_tables = [||];
  }

let test_validate_ok () =
  Alcotest.(check (result unit string)) "sample validates" (Ok ()) (Ir.validate (sample_program ()))

let test_validate_catches_bad_var () =
  let p = sample_program () in
  let bad = { p with Ir.step = Ir.Assign (v "ghost" 99 Dtype.Float64, Ir.float_const Dtype.Float64 0.) :: p.Ir.step } in
  match Ir.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range var accepted"

let test_validate_catches_bad_probe () =
  let p = sample_program () in
  let bad = { p with Ir.step = Ir.Probe 99 :: p.Ir.step } in
  match Ir.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range probe accepted"

let test_validate_catches_duplicate_cells () =
  let p = sample_program () in
  let d = p.Ir.decisions.(0) in
  let bad = { p with Ir.decisions = [| { d with Ir.outcome_probes = [| 0; 0 |] } |] } in
  match Ir.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate probe cells accepted"

let test_eval_semantics () =
  let p = sample_program () in
  let e = Ir_eval.create p in
  Ir_eval.reset e;
  Ir_eval.set_input e 0 (Value.of_float Dtype.Float64 (-3.0));
  Ir_eval.step e;
  Alcotest.(check (float 0.0)) "abs" 3.0 (Value.to_float (Ir_eval.get_output e 0));
  Ir_eval.set_input e 0 (Value.of_float Dtype.Float64 100.0);
  Ir_eval.step e;
  Alcotest.(check (float 0.0)) "saturated" 5.0 (Value.to_float (Ir_eval.get_output e 0));
  Alcotest.(check (float 0.0)) "state counts" 2.0 (Value.to_float (Ir_eval.get_var e p.Ir.states.(0)))

let test_compile_matches_eval_on_sample () =
  let p = sample_program () in
  let e = Ir_eval.create p in
  let c = Ir_compile.compile p in
  Ir_eval.reset e;
  Ir_compile.reset c;
  let rng = Cftcg_util.Rng.create 11L in
  for _ = 1 to 500 do
    let x = Cftcg_util.Rng.float rng 20.0 -. 10.0 in
    Ir_eval.set_input e 0 (Value.of_float Dtype.Float64 x);
    Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 x);
    Ir_eval.step e;
    Ir_compile.step c;
    let ve = Value.to_float (Ir_eval.get_output e 0) in
    let vc = Value.to_float (Ir_compile.get_output c 0) in
    Alcotest.(check (float 0.0)) "outputs agree" ve vc
  done

let test_hooks_fire_identically () =
  let p = sample_program () in
  let run mk_step =
    let probes = ref [] in
    let conds = ref [] in
    let decs = ref [] in
    let branches = ref [] in
    let hooks =
      {
        Hooks.on_probe = Some (fun id -> probes := id :: !probes);
        on_cond = Some (fun d i b -> conds := (d, i, b) :: !conds);
        on_decision = Some (fun d o -> decs := (d, o) :: !decs);
        on_branch = Some (fun ix taken dt df -> branches := (ix, taken, dt, df) :: !branches);
      }
    in
    mk_step hooks;
    (!probes, !conds, !decs, !branches)
  in
  let via_eval hooks =
    let e = Ir_eval.create p in
    Ir_eval.reset ~hooks e;
    Ir_eval.set_input e 0 (Value.of_float Dtype.Float64 7.5);
    Ir_eval.step ~hooks e;
    Ir_eval.set_input e 0 (Value.of_float Dtype.Float64 1.0);
    Ir_eval.step ~hooks e
  in
  let via_compile hooks =
    let c = Ir_compile.compile ~hooks p in
    Ir_compile.reset c;
    Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 7.5);
    Ir_compile.step c;
    Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 1.0);
    Ir_compile.step c
  in
  let pe, ce, de, be = run via_eval in
  let pc, cc, dc, bc = run via_compile in
  Alcotest.(check (list int)) "probes" pe pc;
  Alcotest.(check bool) "conds" true (ce = cc);
  Alcotest.(check bool) "decisions" true (de = dc);
  Alcotest.(check bool) "branch reports" true (be = bc)

let test_branch_distance_rules () =
  let x = v "x" 0 Dtype.Float64 in
  let store_val = ref 0.0 in
  let eval_fn e =
    match e with
    | Ir.Read _ -> Value.of_float Dtype.Float64 !store_val
    | Ir.Const c -> c
    | _ -> Value.of_float Dtype.Float64 0.0
  in
  let le = Ir.Binop (Ir.B_le, Dtype.Float64, Ir.Read x, Ir.float_const Dtype.Float64 10.0) in
  store_val := 3.0;
  let dt, df = Ir_eval.branch_distances le eval_fn in
  Alcotest.(check (float 1e-9)) "le true: dist_true 0" 0.0 dt;
  Alcotest.(check (float 1e-9)) "le true: dist_false 8" 8.0 df;
  store_val := 14.0;
  let dt, df = Ir_eval.branch_distances le eval_fn in
  Alcotest.(check (float 1e-9)) "le false: dist_true 4" 4.0 dt;
  Alcotest.(check (float 1e-9)) "le false: dist_false 0" 0.0 df;
  let eq = Ir.Binop (Ir.B_eq, Dtype.Float64, Ir.Read x, Ir.float_const Dtype.Float64 10.0) in
  store_val := 7.0;
  let dt, _ = Ir_eval.branch_distances eq eval_fn in
  Alcotest.(check (float 1e-9)) "eq: |a-b|" 3.0 dt;
  (* conjunction adds, disjunction mins *)
  let conj = Ir.Binop (Ir.B_and, Dtype.Float64, le, eq) in
  store_val := 14.0;
  let dt, _ = Ir_eval.branch_distances conj eval_fn in
  Alcotest.(check (float 1e-9)) "and sums" 8.0 dt;
  let disj = Ir.Binop (Ir.B_or, Dtype.Float64, le, eq) in
  let dt, _ = Ir_eval.branch_distances disj eval_fn in
  Alcotest.(check (float 1e-9)) "or mins" 4.0 dt

let test_cemit_contains_expected_shapes () =
  let p = sample_program () in
  let c = Cemit.emit_program p in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has step fn" true (contains "void sample_step(" c);
  Alcotest.(check bool) "has init fn" true (contains "void sample_init(void)" c);
  Alcotest.(check bool) "has probe call" true (contains "CoverageStatistics(0);" c);
  Alcotest.(check bool) "has decision call" true (contains "CoverageDecision(0, 1);" c);
  let d = Cemit.emit_fuzz_driver p in
  Alcotest.(check bool) "driver loop" true (contains "while (1)" d);
  Alcotest.(check bool) "driver memcpy" true (contains "memcpy(&" d);
  Alcotest.(check bool) "driver tuple len" true (contains "const int dataLen = 8;" d);
  Alcotest.(check bool) "emit deterministic" true (Cemit.emit_all p = Cemit.emit_all p)

let test_select_evaluates_both_arms () =
  (* Select is branchless: both arms run; no probes can hide in it,
     and its value matches the condition. *)
  let x = v "x" 0 Dtype.Float64 in
  let y = v "y" 1 Dtype.Float64 in
  let p =
    {
      Ir.prog_name = "sel";
      n_vars = 2;
      inputs = [| x |];
      outputs = [| y |];
      states = [||];
      init = [];
      step =
        [ Ir.Assign
            ( y,
              Ir.Select
                ( Ir.Binop (Ir.B_ge, Dtype.Float64, Ir.Read x, Ir.float_const Dtype.Float64 0.0),
                  Ir.float_const Dtype.Float64 1.0,
                  Ir.float_const Dtype.Float64 (-1.0) ) ) ];
      n_probes = 0;
      decisions = [||];
      assertions = [||];
      lookup_tables = [||];
    }
  in
  let c = Ir_compile.compile p in
  Ir_compile.reset c;
  Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 3.0);
  Ir_compile.step c;
  Alcotest.(check (float 0.0)) "positive" 1.0 (Value.to_float (Ir_compile.get_output c 0));
  Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 (-3.0));
  Ir_compile.step c;
  Alcotest.(check (float 0.0)) "negative" (-1.0) (Value.to_float (Ir_compile.get_output c 0))

let suites =
  [ ( "ir.core",
      [ Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "validate bad var" `Quick test_validate_catches_bad_var;
        Alcotest.test_case "validate bad probe" `Quick test_validate_catches_bad_probe;
        Alcotest.test_case "validate dup cells" `Quick test_validate_catches_duplicate_cells ] );
    ( "ir.exec",
      [ Alcotest.test_case "eval semantics" `Quick test_eval_semantics;
        Alcotest.test_case "compile matches eval" `Quick test_compile_matches_eval_on_sample;
        Alcotest.test_case "hooks fire identically" `Quick test_hooks_fire_identically;
        Alcotest.test_case "branch distances" `Quick test_branch_distance_rules;
        Alcotest.test_case "select branchless" `Quick test_select_evaluates_both_arms ] );
    ("ir.cemit", [ Alcotest.test_case "C output shapes" `Quick test_cemit_contains_expected_shapes ])
  ]
