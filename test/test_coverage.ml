(* Tests for the coverage recorder: decision / condition / MCDC. *)

open Cftcg_model
open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen
module Recorder = Cftcg_coverage.Recorder

let drive c inputs =
  List.iteri (fun i v -> Ir_compile.set_input c i v) inputs;
  Ir_compile.step c

let vb = Value.of_bool

let logic_setup () =
  let m = Fixtures.logic_model () in
  let p = Codegen.lower m in
  let rec_ = Recorder.create p in
  let c = Ir_compile.compile ~hooks:(Recorder.hooks rec_) p in
  Ir_compile.reset c;
  (p, rec_, c)

let test_empty_coverage_is_zero () =
  let _, rec_, _ = logic_setup () in
  let r = Recorder.report rec_ in
  Alcotest.(check (float 0.0)) "decision 0" 0.0 r.Recorder.decision_pct;
  Alcotest.(check (float 0.0)) "condition 0" 0.0 r.Recorder.condition_pct;
  Alcotest.(check (float 0.0)) "mcdc 0" 0.0 r.Recorder.mcdc_pct;
  Alcotest.(check int) "no probes" 0 (Recorder.probes_covered rec_)

let test_single_input_partial_coverage () =
  let _, rec_, c = logic_setup () in
  drive c [ vb false; vb false; vb false ];
  let r = Recorder.report rec_ in
  (* and=false, or=true: one outcome per decision -> 50% decision *)
  Alcotest.(check (float 0.01)) "decision 50" 50.0 r.Recorder.decision_pct;
  (* each condition saw exactly one polarity *)
  Alcotest.(check int) "no condition complete" 0 r.Recorder.conditions_covered;
  Alcotest.(check int) "no mcdc yet" 0 r.Recorder.mcdc_covered

let test_full_coverage_logic () =
  let _, rec_, c = logic_setup () in
  (* exhaustive boolean inputs *)
  List.iter
    (fun (a, b, cc) -> drive c [ vb a; vb b; vb cc ])
    [ (false, false, false); (false, false, true); (false, true, false); (false, true, true);
      (true, false, false); (true, false, true); (true, true, false); (true, true, true) ]
  ;
  let r = Recorder.report rec_ in
  Alcotest.(check (float 0.01)) "decision 100" 100.0 r.Recorder.decision_pct;
  Alcotest.(check (float 0.01)) "condition 100" 100.0 r.Recorder.condition_pct;
  Alcotest.(check (float 0.01)) "mcdc 100" 100.0 r.Recorder.mcdc_pct;
  Alcotest.(check int) "all probes" (Recorder.n_probes rec_) (Recorder.probes_covered rec_)

let test_mcdc_needs_independence_pair () =
  (* AND gate: (T,T)->T and (F,T)->F gives an independence pair for
     condition 1 only; condition 2 stays uncovered. *)
  let b = Build.create "AndOnly" in
  let a = Build.inport b "a" Dtype.Bool in
  let b2 = Build.inport b "b" Dtype.Bool in
  let y = Build.and_ b a b2 in
  Build.outport b "y" y;
  let m = Build.finish b in
  let p = Codegen.lower m in
  let rec_ = Recorder.create p in
  let c = Ir_compile.compile ~hooks:(Recorder.hooks rec_) p in
  Ir_compile.reset c;
  drive c [ vb true; vb true ];
  drive c [ vb false; vb true ];
  let r = Recorder.report rec_ in
  Alcotest.(check int) "one condition mcdc-covered" 1 r.Recorder.mcdc_covered;
  Alcotest.(check int) "two conditions total" 2 r.Recorder.mcdc_total;
  (* now add (T,F)->F: condition 2 gains its pair *)
  drive c [ vb true; vb false ];
  let r = Recorder.report rec_ in
  Alcotest.(check int) "both mcdc-covered" 2 r.Recorder.mcdc_covered

let test_condition_vs_mcdc_difference () =
  (* For an AND gate, inputs (F,F),(T,T) give full condition coverage
     but NOT full MCDC: flipping one condition of (F,F) is never
     observed. *)
  let b = Build.create "AndGap" in
  let a = Build.inport b "a" Dtype.Bool in
  let b2 = Build.inport b "b" Dtype.Bool in
  let y = Build.and_ b a b2 in
  Build.outport b "y" y;
  let m = Build.finish b in
  let p = Codegen.lower m in
  let rec_ = Recorder.create p in
  let c = Ir_compile.compile ~hooks:(Recorder.hooks rec_) p in
  Ir_compile.reset c;
  drive c [ vb false; vb false ];
  drive c [ vb true; vb true ];
  let r = Recorder.report rec_ in
  Alcotest.(check (float 0.01)) "condition 100" 100.0 r.Recorder.condition_pct;
  Alcotest.(check (float 0.01)) "mcdc 0" 0.0 r.Recorder.mcdc_pct

let test_coverage_monotone () =
  let _, rec_, c = logic_setup () in
  let rng = Cftcg_util.Rng.create 5L in
  let last = ref (0.0, 0.0, 0.0) in
  for _ = 1 to 100 do
    drive c [ vb (Cftcg_util.Rng.bool rng); vb (Cftcg_util.Rng.bool rng); vb (Cftcg_util.Rng.bool rng) ];
    let r = Recorder.report rec_ in
    let d, cc, m = !last in
    Alcotest.(check bool) "decision monotone" true (r.Recorder.decision_pct >= d);
    Alcotest.(check bool) "condition monotone" true (r.Recorder.condition_pct >= cc);
    Alcotest.(check bool) "mcdc monotone" true (r.Recorder.mcdc_pct >= m);
    last := (r.Recorder.decision_pct, r.Recorder.condition_pct, r.Recorder.mcdc_pct)
  done

let test_clear_resets () =
  let _, rec_, c = logic_setup () in
  drive c [ vb true; vb true; vb true ];
  Alcotest.(check bool) "something covered" true (Recorder.probes_covered rec_ > 0);
  Recorder.clear rec_;
  Alcotest.(check int) "cleared" 0 (Recorder.probes_covered rec_);
  let r = Recorder.report rec_ in
  Alcotest.(check (float 0.0)) "decision reset" 0.0 r.Recorder.decision_pct

let test_branch_total () =
  let p = Codegen.lower (Fixtures.logic_model ()) in
  (* 2 decisions with 2 outcomes each *)
  Alcotest.(check int) "branch total" 4 (Recorder.branch_total p);
  let p3 = Codegen.lower (Fixtures.arith_model ()) in
  (* saturation (3) + switch (2) = 5 *)
  Alcotest.(check int) "arith branch total" 5 (Recorder.branch_total p3)

let test_multiway_decision_coverage () =
  let p = Codegen.lower (Fixtures.arith_model ()) in
  let rec_ = Recorder.create p in
  let c = Ir_compile.compile ~hooks:(Recorder.hooks rec_) p in
  Ir_compile.reset c;
  let vi n = Value.of_int Dtype.Int32 n in
  let v8 n = Value.of_int Dtype.Int8 n in
  drive c [ vi 3; vi 3; v8 1 ];
  (* within + switch-true *)
  let r = Recorder.report rec_ in
  Alcotest.(check int) "2 of 5 outcomes" 2 r.Recorder.outcomes_covered;
  drive c [ vi 100; vi 100; v8 0 ];
  (* above + switch-false *)
  drive c [ vi (-100); vi 0; v8 1 ];
  (* below + switch-true (already seen) *)
  let r = Recorder.report rec_ in
  Alcotest.(check int) "5 of 5 outcomes" 5 r.Recorder.outcomes_covered

let suites =
  [ ( "coverage.recorder",
      [ Alcotest.test_case "empty is zero" `Quick test_empty_coverage_is_zero;
        Alcotest.test_case "partial coverage" `Quick test_single_input_partial_coverage;
        Alcotest.test_case "full logic coverage" `Quick test_full_coverage_logic;
        Alcotest.test_case "mcdc independence pair" `Quick test_mcdc_needs_independence_pair;
        Alcotest.test_case "condition vs mcdc" `Quick test_condition_vs_mcdc_difference;
        Alcotest.test_case "coverage monotone" `Quick test_coverage_monotone;
        Alcotest.test_case "clear resets" `Quick test_clear_resets;
        Alcotest.test_case "branch totals" `Quick test_branch_total;
        Alcotest.test_case "multiway decisions" `Quick test_multiway_decision_coverage ] ) ]
