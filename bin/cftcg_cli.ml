(* cftcg — command-line front end.

   Subcommands:
     fuzz      run a CFTCG campaign on a model file, emit CSV test cases
     emit-c    print the generated C fuzz code + driver for a model
     coverage  replay a CSV test suite and report coverage
     convert   convert one binary (hex) test case to CSV or back
     corpus    maintain on-disk corpus directories (fsck)
     models    list / export the built-in benchmark models
     serve     fuzzing-as-a-service daemon (multi-tenant scheduler)
     submit    submit a campaign to a running daemon
     status    query a running daemon *)

open Cmdliner
open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Recorder = Cftcg_coverage.Recorder
module Testcase = Cftcg_testcase.Testcase
module Models = Cftcg_bench_models.Bench_models
module Mutate = Cftcg_fuzz.Mutate
module Ir_opt = Cftcg_ir.Ir_opt

let load_model path =
  match Models.find path with
  | Some e -> Lazy.force e.Models.model
  | None -> (
    try Slx.load_file path with
    | Slx.Load_error msg ->
      Printf.eprintf "cannot load %s: %s\n" path msg;
      exit 1
    | Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1)

let model_arg =
  let doc = "Model: a .slx.xml file or the name of a built-in benchmark (e.g. SolarPV)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the campaign.")

(* ------------------------------------------------------------------ *)

let parse_range spec =
  match String.split_on_char '=' spec with
  | [ name; range ] -> (
    match String.split_on_char ':' range with
    | [ lo; hi ] -> (
      match (float_of_string_opt lo, float_of_string_opt hi) with
      | Some lo, Some hi -> (name, lo, hi)
      | _ ->
        Printf.eprintf "bad range %S (expected Port=lo:hi)\n" spec;
        exit 1)
    | _ ->
      Printf.eprintf "bad range %S (expected Port=lo:hi)\n" spec;
      exit 1)
  | _ ->
    Printf.eprintf "bad range %S (expected Port=lo:hi)\n" spec;
    exit 1

let backend_conv =
  let parse = function
    | "vm" -> Ok Fuzzer.Vm
    | "closures" -> Ok Fuzzer.Closures
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S (expected vm or closures)" s))
  in
  let print fmt b =
    Format.pp_print_string fmt (match b with Fuzzer.Vm -> "vm" | Fuzzer.Closures -> "closures")
  in
  Arg.conv (parse, print)

let crash_policy_conv =
  let module Campaign = Cftcg_campaign.Campaign in
  let parse = function
    | "abort" -> Ok Campaign.Abort
    | "degrade" -> Ok Campaign.Degrade
    | s -> Error (`Msg (Printf.sprintf "unknown crash policy %S (expected abort or degrade)" s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with Campaign.Abort -> "abort" | Campaign.Degrade -> "degrade")
  in
  Arg.conv (parse, print)

(* arm the fault-injection harness for chaos runs; prints the
   injection tally at exit so a scripted run can see what fired.
   A chaos run always gets the flight recorder: every fired fault is
   recorded in the ring, and a salvaged worker crash dumps a
   post-mortem naming the injection point. *)
let arm_faults spec fault_seed =
  match spec with
  | None -> ()
  | Some spec ->
    let module Fault = Cftcg_util.Fault in
    let module Flight = Cftcg_obs.Flight in
    let module Log = Cftcg_obs.Log in
    (try Fault.arm_spec ~seed:(Int64.of_int fault_seed) spec with
    | Invalid_argument msg ->
      Printf.eprintf "bad --inject-faults spec: %s\n" msg;
      exit 1);
    Flight.set_enabled true;
    Fault.set_on_inject (fun p ->
        let name = Fault.point_name p in
        if Log.enabled Log.Warn then
          Log.warn ~fields:[ ("fault", name) ] "fault injected at %s" name
        else Flight.record ~fields:[ ("fault", name) ] ~level:"warn"
            (Printf.sprintf "fault injected at %s" name));
    at_exit (fun () ->
        Array.iter
          (fun p ->
            if Fault.hits p > 0 then
              Printf.eprintf "fault %s: %d injected / %d checks\n" (Fault.point_name p)
                (Fault.injected p) (Fault.hits p))
          Fault.all_points)

(* observability flags shared by fuzz and profile: enable collection,
   run the body, then write the requested exports *)
let with_observability ?(force = false) ?(want_series = false) ~metrics_out ~trace_out
    ~coverage_csv body =
  let module Metrics = Cftcg_obs.Metrics in
  let module Trace = Cftcg_obs.Trace in
  let module Series = Cftcg_obs.Series in
  if force || metrics_out <> None then Metrics.set_collect true;
  if force || trace_out <> None then Trace.set_enabled true;
  let series =
    if force || want_series || coverage_csv <> None then Some (Series.create ()) else None
  in
  let result = body series in
  (match metrics_out with
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Metrics.to_prometheus Metrics.default));
    Printf.printf "wrote metrics to %s\n" path
  | None -> ());
  (match trace_out with
  | Some path ->
    Trace.save_chrome path;
    Printf.printf "wrote Chrome trace to %s (load in about:tracing or ui.perfetto.dev)\n" path
  | None -> ());
  (match (coverage_csv, series) with
  | Some path, Some s ->
    Series.save_csv s path;
    Printf.printf "wrote coverage series to %s\n" path
  | _ -> ());
  result

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc:"Write a Prometheus text-format metrics dump to FILE at the end of the run (enables metric collection).")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Record tracing spans and write a Chrome trace-event JSON file (loadable in about:tracing / Perfetto).")

let coverage_csv_arg =
  Arg.(value & opt (some string) None & info [ "coverage-csv" ] ~docv:"FILE" ~doc:"Write the coverage-over-time series (paper Figure 7) as CSV: time_s,execs,probes_covered.")

let log_out_arg =
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc:"Write structured JSONL log lines (with job/worker/epoch correlation ids) to FILE; enables logging at $(b,--log-level).")

let log_level_arg =
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc:"Logging threshold: $(b,debug), $(b,info) (default), $(b,warn), $(b,error), or $(b,off).")

(* parse --log-level, open the --log sink and enable the flight
   recorder. [always] (the serve daemon) turns logging on even
   without --log — the ring then feeds /debug/log and post-mortem
   dumps; a local fuzz run only logs when a file is requested. *)
let setup_logging ?(always = false) log_out log_level =
  let module Log = Cftcg_obs.Log in
  let module Flight = Cftcg_obs.Flight in
  match Log.level_of_string log_level with
  | Error msg ->
    Printf.eprintf "bad --log-level: %s\n" msg;
    exit 1
  | Ok lvl ->
    if always || log_out <> None then begin
      Log.set_level lvl;
      Flight.set_enabled true;
      (match log_out with
      | Some path -> Log.open_file path
      | None -> ());
      at_exit Log.close_file
    end

let fuzz_cmd =
  let run model_path seconds execs out_dir seed ranges seed_dir jobs corpus resume telemetry
      epoch_execs backend no_opt batch max_runtime epoch_deadline on_worker_crash inject_faults
      fault_seed metrics_out trace_out coverage_csv html_out log_out log_level hybrid
      solver_budget solver_rounds =
    (* --jobs 0: one worker per hardware thread, minus the coordinator *)
    let jobs = if jobs = 0 then Cftcg_campaign.Worker_pool.default_capacity () else jobs in
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be >= 0 (got %d)\n" jobs;
      exit 1
    end;
    if resume && corpus = None then begin
      Printf.eprintf "--resume requires --corpus (there is no manifest to resume from)\n";
      exit 1
    end;
    arm_faults inject_faults fault_seed;
    setup_logging log_out log_level;
    let model = load_model model_path in
    let seeds =
      match seed_dir with
      | None -> []
      | Some dir ->
        let layout = Layout.of_inports (Graph.inports model) in
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".csv")
        |> List.map (Filename.concat dir)
        |> Testcase.load_suite layout
    in
    let config =
      { Fuzzer.default_config with
        Fuzzer.seed = Int64.of_int seed;
        ranges = List.map parse_range ranges;
        seeds;
        backend;
        optimize = not no_opt;
        batch
      }
    in
    (* --hybrid needs the campaign machinery (plateau detection and
       the coordinator's merged coverage map), so it forces the
       campaign path even single-worker *)
    let parallel = jobs > 1 || corpus <> None || resume || telemetry <> None || hybrid in
    let series_ref = ref None in
    let layout, prog, suite =
      with_observability ~want_series:(html_out <> None) ~metrics_out ~trace_out ~coverage_csv
      @@ fun series ->
      series_ref := series;
      if parallel then begin
        (* ensemble campaign: N worker domains in epochs with corpus
           merge, optional persistence/resume, telemetry stream *)
        let module Campaign = Cftcg.Pipeline.Campaign in
        let module Telemetry = Cftcg_campaign.Telemetry in
        let sinks =
          Telemetry.progress stderr
          :: ((match telemetry with
              | Some path -> [ Telemetry.jsonl ~append:resume path ]
              | None -> [])
             @ (if metrics_out <> None then [ Telemetry.metrics_bridge () ] else [])
             @
             match series with
             | Some s -> [ Telemetry.series_bridge s ]
             | None -> [])
        in
        let sink = Telemetry.multi sinks in
        let ccfg =
          { Campaign.default_config with
            Campaign.jobs = jobs;
            seed = Int64.of_int seed;
            total_execs =
              (match execs with
              | Some n -> n
              | None -> Campaign.default_config.Campaign.total_execs);
            execs_per_epoch = epoch_execs;
            fuzzer = config;
            corpus_dir = corpus;
            resume;
            sink;
            on_worker_crash;
            max_runtime;
            epoch_deadline;
            job = Some (Printf.sprintf "fuzz-%d" (Unix.getpid ()));
            hybrid =
              (if hybrid then
                 Some
                   { Campaign.default_hybrid with
                     Campaign.solver_execs = solver_budget;
                     solver_rounds
                   }
               else None)
          }
        in
        let pc =
          try Cftcg.Pipeline.run_parallel_campaign ~config:ccfg model with
          | Campaign.Worker_crashed { worker; epoch; message } ->
            Printf.eprintf "worker %d crashed in epoch %d: %s\n" worker epoch message;
            exit 1
        in
        sink.Telemetry.close ();
        let r = pc.Cftcg.Pipeline.pc_result in
        (match series with
        | Some s -> Cftcg_obs.Series.set_probes_total s r.Campaign.probes_total
        | None -> ());
        if r.Campaign.resumed then Printf.printf "resumed from %s\n" (Option.get corpus);
        Printf.printf "jobs: %d\nepochs: %d%s\nexecutions: %d\nprobes: %d/%d\ncorpus: %d entries\n"
          ccfg.Campaign.jobs
          (List.length r.Campaign.epochs)
          (if r.Campaign.plateaued then " (stopped on plateau)" else "")
          r.Campaign.executions r.Campaign.probes_covered r.Campaign.probes_total
          (List.length r.Campaign.suite);
        if r.Campaign.solver_rounds > 0 then
          Printf.printf "solver: %d phase(s), %d probe(s) closed, %d execs\n"
            r.Campaign.solver_rounds r.Campaign.solver_solved r.Campaign.solver_executions;
        (match r.Campaign.stop_reason with
        | Some reason -> Printf.printf "stop reason: %s\n" (Campaign.stop_reason_string reason)
        | None -> ());
        List.iter
          (fun (f : Fuzzer.failure) -> Printf.printf "FAILURE: %s\n" f.Fuzzer.f_message)
          r.Campaign.failures;
        Format.printf "coverage: %a@." Recorder.pp_report pc.Cftcg.Pipeline.pc_coverage;
        ( pc.Cftcg.Pipeline.pc_gen.Cftcg.Pipeline.layout,
          pc.Cftcg.Pipeline.pc_gen.Cftcg.Pipeline.program,
          r.Campaign.suite )
      end
      else begin
        let budget =
          match (execs, max_runtime) with
          | Some n, Some s -> Fuzzer.Wall_budget { max_execs = n; max_seconds = s }
          | Some n, None -> Fuzzer.Exec_budget n
          | None, Some s -> Fuzzer.Time_budget (Float.min s seconds)
          | None, None -> Fuzzer.Time_budget seconds
        in
        let campaign = Cftcg.Pipeline.run_campaign ~config ?coverage_series:series model budget in
        let stats = campaign.Cftcg.Pipeline.fuzz.Fuzzer.stats in
        Printf.printf "executions: %d\nmodel iterations: %d\niteration rate: %.0f/s\n"
          stats.Fuzzer.executions stats.Fuzzer.iterations
          (float_of_int stats.Fuzzer.iterations /. Float.max stats.Fuzzer.elapsed 1e-9);
        Format.printf "coverage: %a@." Recorder.pp_report campaign.Cftcg.Pipeline.coverage;
        ( campaign.Cftcg.Pipeline.gen.Cftcg.Pipeline.layout,
          campaign.Cftcg.Pipeline.gen.Cftcg.Pipeline.program,
          List.map
            (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data)
            campaign.Cftcg.Pipeline.fuzz.Fuzzer.test_suite )
      end
    in
    (match html_out with
    | Some path ->
      (* replay the found suite on an instrumented build and render the
         HTML report, embedding the coverage-over-time curve recorded
         during the run *)
      let recorder = Recorder.create prog in
      let compiled = Cftcg_ir.Ir_compile.compile ~hooks:(Recorder.hooks recorder) prog in
      List.iter
        (fun data ->
          Cftcg_ir.Ir_compile.reset compiled;
          for tuple = 0 to min (Layout.n_tuples layout data) 4096 - 1 do
            Layout.load_tuple layout data ~tuple compiled;
            Cftcg_ir.Ir_compile.step compiled
          done)
        suite;
      let curve =
        match !series_ref with
        | Some s ->
          List.map
            (fun (p : Cftcg_obs.Series.point) -> (p.Cftcg_obs.Series.pt_time, p.Cftcg_obs.Series.pt_covered))
            (Cftcg_obs.Series.points s)
        | None -> []
      in
      Cftcg_coverage.Html_report.save ~model_name:model.Graph.model_name ~coverage_curve:curve
        ~probes_total:prog.Cftcg_ir.Ir.n_probes recorder path;
      Printf.printf "wrote HTML report to %s\n" path
    | None -> ());
    let paths = Testcase.save_suite layout ~dir:out_dir ~prefix:model.Graph.model_name suite in
    Printf.printf "wrote %d test cases to %s\n" (List.length paths) out_dir
  in
  let seconds =
    Arg.(value & opt float 5.0 & info [ "t"; "time" ] ~docv:"SECONDS" ~doc:"Time budget.")
  in
  let execs =
    Arg.(value & opt (some int) None & info [ "execs" ] ~docv:"N" ~doc:"Execution budget (overrides time).")
  in
  let out_dir =
    Arg.(value & opt string "testcases" & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let ranges =
    Arg.(value & opt_all string [] & info [ "range" ] ~docv:"PORT=LO:HI" ~doc:"Constrain an inport's value range (repeatable).")
  in
  let seed_dir =
    Arg.(value & opt (some dir) None & info [ "seeds" ] ~docv:"DIR" ~doc:"Seed corpus: directory of CSV test cases executed first.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Parallel fuzzing workers (ensemble campaign with corpus merge between epochs). $(b,0) resolves to the machine default: one worker per hardware thread, minus one for the coordinator (never below 1).")
  in
  let corpus =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc:"Persist the merged corpus (content-addressed entries + manifest) to DIR after every epoch.")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ] ~doc:"Resume an interrupted campaign from the corpus manifest (requires --corpus).")
  in
  let telemetry =
    Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc:"Write the campaign's structured event stream as JSON lines to FILE.")
  in
  let epoch_execs =
    Arg.(value & opt int 1000 & info [ "epoch-execs" ] ~docv:"N" ~doc:"Per-worker executions between corpus merges (parallel mode).")
  in
  let backend =
    Arg.(value & opt backend_conv Fuzzer.Vm & info [ "backend" ] ~docv:"BACKEND" ~doc:"Execution backend: $(b,vm) (flat bytecode, default) or $(b,closures) (fallback). Campaigns are identical either way; vm is faster.")
  in
  let no_opt =
    Arg.(value & flag & info [ "no-opt" ] ~doc:"Disable the bytecode optimizer for the vm backend (escape hatch; campaigns are identical either way).")
  in
  let batch =
    Arg.(value & opt int Fuzzer.default_config.Fuzzer.batch
         & info [ "batch" ] ~docv:"K"
             ~doc:"Lanes of the batched lockstep VM per dispatch (vm backend; default 8, 1 = scalar). Campaigns are byte-identical across settings; batching only changes throughput, and divergence-heavy models fall back to scalar automatically.")
  in
  let max_runtime =
    Arg.(value & opt (some float) None & info [ "max-runtime" ] ~docv:"SECONDS" ~doc:"Hard wall-clock ceiling on the whole run: with $(b,--execs) the run ends at whichever limit is hit first, so a stalled target cannot hang the campaign. Without it, exec-budget runs stay purely on the virtual clock (byte-identical per seed).")
  in
  let epoch_deadline =
    Arg.(value & opt (some float) None & info [ "epoch-deadline" ] ~docv:"SECONDS" ~doc:"Wall-clock ceiling per worker epoch run (parallel mode).")
  in
  let on_worker_crash =
    Arg.(value & opt crash_policy_conv Cftcg_campaign.Campaign.Degrade
         & info [ "on-worker-crash" ] ~docv:"POLICY" ~doc:"What to do when a worker domain raises: $(b,degrade) (default) salvages the survivors and continues with one worker fewer; $(b,abort) stops the campaign with an error.")
  in
  let inject_faults =
    Arg.(value & opt (some string) None & info [ "inject-faults" ] ~docv:"SPEC" ~doc:"Arm the deterministic fault-injection harness (testing): comma-separated $(i,point=rate), $(i,point@k) or bare $(i,point) entries over store_write, store_rename, worker_raise, exec_stall — e.g. $(b,store_write=0.1,worker_raise\\@2).")
  in
  let fault_seed =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N" ~doc:"Seed for the $(b,--inject-faults) schedule.")
  in
  let html_out =
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE" ~doc:"Write a self-contained HTML coverage report for the generated suite, including the coverage-over-time curve.")
  in
  let hybrid =
    Arg.(value & flag & info [ "hybrid" ] ~doc:"Hybrid concolic campaign: at a coverage plateau, hand the still-uncovered probes to the bounded constraint solver under a deterministic exec budget, absorb the solved inputs as corpus seeds, and resume fuzzing — alternating until neither phase makes progress. Forces campaign mode; same-seed runs stay byte-identical.")
  in
  let solver_budget =
    Arg.(value & opt int Cftcg_campaign.Campaign.default_hybrid.Cftcg_campaign.Campaign.solver_execs
         & info [ "solver-budget" ] ~docv:"N" ~doc:"Solver executions per $(b,--hybrid) phase (clipped to the remaining $(b,--execs) budget).")
  in
  let solver_rounds =
    Arg.(value & opt int Cftcg_campaign.Campaign.default_hybrid.Cftcg_campaign.Campaign.solver_rounds
         & info [ "solver-rounds" ] ~docv:"K" ~doc:"Maximum solver phases per $(b,--hybrid) campaign.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run a CFTCG fuzzing campaign and emit CSV test cases.")
    Term.(const run $ model_arg $ seconds $ execs $ out_dir $ seed_arg $ ranges $ seed_dir $ jobs
          $ corpus $ resume $ telemetry $ epoch_execs $ backend $ no_opt $ batch $ max_runtime
          $ epoch_deadline $ on_worker_crash $ inject_faults $ fault_seed $ metrics_out_arg
          $ trace_out_arg $ coverage_csv_arg $ html_out $ log_out_arg $ log_level_arg $ hybrid
          $ solver_budget $ solver_rounds)

let emit_c_cmd =
  let run model_path branchless =
    let model = load_model model_path in
    let mode = if branchless then Codegen.Branchless else Codegen.Full in
    let prog = Codegen.lower ~mode model in
    print_string (Cftcg_ir.Cemit.emit_all prog)
  in
  let branchless =
    Arg.(value & flag & info [ "branchless" ] ~doc:"Emit the Fuzz-Only (branchless) build instead.")
  in
  Cmd.v
    (Cmd.info "emit-c" ~doc:"Print the generated C fuzz code and driver.")
    Term.(const run $ model_arg $ branchless)

let coverage_cmd =
  let run model_path csvs detailed html_out =
    let model = load_model model_path in
    let prog = Codegen.lower ~mode:Codegen.Full model in
    let layout = Layout.of_program prog in
    let suite =
      try Testcase.load_suite layout csvs with
      | Testcase.Parse_error msg ->
        Printf.eprintf "bad test case: %s\n" msg;
        exit 1
    in
    if detailed || html_out <> None then begin
      let recorder = Recorder.create prog in
      let compiled = Cftcg_ir.Ir_compile.compile ~hooks:(Recorder.hooks recorder) prog in
      List.iter
        (fun data ->
          Cftcg_ir.Ir_compile.reset compiled;
          for tuple = 0 to min (Layout.n_tuples layout data) 4096 - 1 do
            Layout.load_tuple layout data ~tuple compiled;
            Cftcg_ir.Ir_compile.step compiled
          done)
        suite;
      if detailed then print_string (Recorder.detailed recorder);
      (match html_out with
      | Some path ->
        let ranges = Cftcg.Evaluate.signal_ranges prog suite in
        Cftcg_coverage.Html_report.save ~model_name:model.Graph.model_name
          ~signal_ranges:ranges recorder path;
        Printf.printf "wrote HTML report to %s\n" path
      | None -> ());
      Format.printf "%a@." Recorder.pp_report (Recorder.report recorder)
    end
    else begin
      let report = Cftcg.Evaluate.replay prog suite in
      Format.printf "%a@." Recorder.pp_report report
    end
  in
  let csvs = Arg.(value & pos_right 0 file [] & info [] ~docv:"CSV" ~doc:"Test case files.") in
  let detailed = Arg.(value & flag & info [ "detailed" ] ~doc:"Per-decision breakdown.") in
  let html_out =
    Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE" ~doc:"Write a self-contained HTML coverage report.")
  in
  Cmd.v
    (Cmd.info "coverage" ~doc:"Replay CSV test cases and report model coverage.")
    Term.(const run $ model_arg $ csvs $ detailed $ html_out)

let minimize_cmd =
  let run model_path csvs out_dir =
    let model = load_model model_path in
    let prog = Codegen.lower ~mode:Codegen.Full model in
    let layout = Layout.of_program prog in
    let suite =
      try Testcase.load_suite layout csvs with
      | Testcase.Parse_error msg ->
        Printf.eprintf "bad test case: %s\n" msg;
        exit 1
    in
    let kept, stats = Cftcg_fuzz.Minimize.suite prog suite in
    Printf.printf "kept %d, dropped %d (%d probe cells covered)\n" stats.Cftcg_fuzz.Minimize.kept
      stats.Cftcg_fuzz.Minimize.dropped stats.Cftcg_fuzz.Minimize.probes_covered;
    let paths = Testcase.save_suite layout ~dir:out_dir ~prefix:(model.Graph.model_name ^ "_min") kept in
    Printf.printf "wrote %d test cases to %s\n" (List.length paths) out_dir
  in
  let csvs = Arg.(value & pos_right 0 file [] & info [] ~docv:"CSV" ~doc:"Test case files.") in
  let out_dir =
    Arg.(value & opt string "minimized" & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "minimize" ~doc:"Reduce a test suite while preserving its coverage.")
    Term.(const run $ model_arg $ csvs $ out_dir)

let convert_cmd =
  let run model_path hex =
    let model = load_model model_path in
    let layout = Layout.of_inports (Graph.inports model) in
    match hex with
    | Some h ->
      let data = Cftcg_util.Bytecodec.bytes_of_hex h in
      print_string (Testcase.to_csv layout data)
    | None ->
      (* read CSV from stdin, print hex *)
      let csv = In_channel.input_all stdin in
      let data = Testcase.of_csv layout csv in
      print_endline (Cftcg_util.Bytecodec.hex_of_bytes data)
  in
  let hex =
    Arg.(value & opt (some string) None & info [ "hex" ] ~docv:"HEX" ~doc:"Binary test case as hex; without it, CSV is read from stdin and hex is printed.")
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert between binary (hex) and CSV test cases.")
    Term.(const run $ model_arg $ hex)

let simulate_cmd =
  let run model_path csv trace_out =
    let model = load_model model_path in
    let prog = Codegen.lower ~mode:Codegen.Plain model in
    let layout = Layout.of_program prog in
    let data =
      try
        let ic = open_in csv in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Testcase.of_csv layout (really_input_string ic (in_channel_length ic)))
      with
      | Testcase.Parse_error msg ->
        Printf.eprintf "bad test case: %s\n" msg;
        exit 1
    in
    let compiled = Cftcg_ir.Ir_compile.compile prog in
    Cftcg_ir.Ir_compile.reset compiled;
    let out_names = Graph.outports model in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf ("step," ^ String.concat "," (Array.to_list out_names) ^ "\n");
    for tuple = 0 to Layout.n_tuples layout data - 1 do
      Layout.load_tuple layout data ~tuple compiled;
      Cftcg_ir.Ir_compile.step compiled;
      Buffer.add_string buf (string_of_int tuple);
      Array.iteri
        (fun o _ ->
          let v = Cftcg_ir.Ir_compile.get_output compiled o in
          Buffer.add_string buf ("," ^ Cftcg_model.Value.to_string v))
        out_names;
      Buffer.add_char buf '\n'
    done;
    match trace_out with
    | None -> print_string (Buffer.contents buf)
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf));
      Printf.printf "wrote trace to %s\n" path
  in
  let csv = Arg.(required & pos 1 (some file) None & info [] ~docv:"INPUT.CSV" ~doc:"Input test case.") in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.CSV" ~doc:"Write the output trace to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one CSV test case through the model and print the output trace.")
    Term.(const run $ model_arg $ csv $ trace_out)

(* raw float rows (one per model iteration, port order) for the
   bytecode reference profiler, decoded the way the fuzz driver does *)
let rows_of_bytes (layout : Layout.t) data ~max_rows =
  let n = min (Layout.n_tuples layout data) max_rows in
  Array.init n (fun tuple ->
      Array.map
        (fun (f : Layout.field) ->
          Value.decode_float f.Layout.f_ty data
            ((tuple * layout.Layout.tuple_len) + f.Layout.f_offset))
        layout.Layout.fields)

let print_opcode_histogram ?(limit = 16) (bp : Ir_opt.bytecode_profile) =
  let total = max bp.Ir_opt.bp_dispatches 1 in
  let items =
    Array.to_list (Array.mapi (fun op n -> (n, op)) bp.Ir_opt.bp_opcode_dyn)
    |> List.filter (fun (n, _) -> n > 0)
    |> List.sort (fun a b -> compare b a)
  in
  List.iteri
    (fun i (n, op) ->
      if i < limit then
        Printf.printf "  %-16s %10d  %5.1f%%\n" (Ir_opt.opcode_name op) n
          (100.0 *. float_of_int n /. float_of_int total))
    items

let ir_cmd =
  let run model_path dump instrumented profile steps batch =
    let model = load_model model_path in
    let prog = Codegen.lower ~mode:Codegen.Full model in
    let lin =
      let instrument =
        if instrumented then
          { Cftcg_ir.Ir_linearize.probe_hook = true; cond = true; decision = true; branch = true }
        else Cftcg_ir.Ir_linearize.no_instrumentation
      in
      Cftcg_ir.Ir_linearize.linearize ~instrument prog
    in
    let opt = Ir_opt.optimize_bytecode lin in
    let summary label (l : Cftcg_ir.Ir_linearize.t) =
      Printf.printf "%-12s %5d insts, %4d regs, %3d consts\n" label
        (Ir_opt.static_count l)
        l.Cftcg_ir.Ir_linearize.l_n_regs
        (Array.length l.Cftcg_ir.Ir_linearize.l_consts)
    in
    Printf.printf "model %s (%s build)\n" model.Graph.model_name
      (if instrumented then "instrumented" else "plain");
    summary "bytecode" lin;
    summary "optimized" opt;
    let hits =
      if not profile then None
      else begin
        let layout = Layout.of_program prog in
        let rng = Cftcg_util.Rng.create 1L in
        let data =
          Bytes.concat Bytes.empty
            (List.init steps (fun _ -> Layout.random_tuple_bytes layout rng))
        in
        let rows = rows_of_bytes layout data ~max_rows:steps in
        let bp = Ir_opt.profile_bytecode opt rows in
        Printf.printf
          "\nprofile over %d random steps: %d dispatches (init %d, step %d)\nopcode histogram:\n"
          steps bp.Ir_opt.bp_dispatches bp.Ir_opt.bp_init_dispatches bp.Ir_opt.bp_step_dispatches;
        print_opcode_histogram bp;
        Some (bp.Ir_opt.bp_init_hits, bp.Ir_opt.bp_step_hits)
      end
    in
    if dump then begin
      print_string "\n== before optimization ==\n";
      print_string (Ir_opt.disassemble lin);
      print_string "\n== after optimization ==\n";
      (* hit counts (when profiling) belong to the optimized stream *)
      print_string (Ir_opt.disassemble ?hits opt)
    end;
    match batch with
    | None -> ()
    | Some k ->
      if k < 1 || k > 64 then begin
        Printf.eprintf "--batch must be in 1..64 (got %d)\n" k;
        exit 1
      end;
      let module B = Cftcg_ir.Ir_vm_batch in
      let bvm = B.compile ~k prog in
      let blin = B.linearized bvm in
      let n_regs = blin.Cftcg_ir.Ir_linearize.l_n_regs in
      Printf.printf
        "\n== batched lockstep VM (K=%d) ==\nregister file: %d planes x %d lanes (SoA; register r, lane l at r*%d+l) = %d floats, %d bytes\nprobe coverage: %d probes x %d lanes = %d bytes, lane-minor\n"
        k n_regs k k (n_regs * k) (n_regs * k * 8)
        prog.Cftcg_ir.Ir.n_probes k
        (max prog.Cftcg_ir.Ir.n_probes 1 * k);
      (* drive the lanes with independent random inputs to expose
         where control flow splits the lane groups *)
      let layout = Layout.of_program prog in
      let rng = Cftcg_util.Rng.create 1L in
      B.reset bvm;
      for _ = 1 to steps do
        for lane = 0 to k - 1 do
          let tuple = Layout.random_tuple_bytes layout rng in
          Layout.load_tuple_bvm layout tuple ~tuple:0 bvm ~lane
        done;
        B.step bvm
      done;
      let hot label code divs =
        match divs with
        | [] -> Printf.printf "%s: no lane divergence\n" label
        | divs ->
          Printf.printf "%s divergence hotspots (pc, splits, opcode):\n" label;
          List.iteri
            (fun i (pc, n) ->
              if i < 10 then
                Printf.printf "  pc %5d  %8d  %s\n" pc n (Ir_opt.opcode_name code.(pc)))
            divs
      in
      Printf.printf "lane divergence over %d random steps (%d splits total):\n" steps
        (B.total_divergence bvm);
      hot "init" blin.Cftcg_ir.Ir_linearize.l_init (B.init_divergence bvm);
      hot "step" blin.Cftcg_ir.Ir_linearize.l_step (B.step_divergence bvm)
  in
  let dump =
    Arg.(value & flag & info [ "dump-bytecode" ] ~doc:"Print the full disassembly before and after the optimizer pipeline.")
  in
  let instrumented =
    Arg.(value & flag & info [ "instrumented" ] ~doc:"Linearize the fuzzing build (probe/branch-hook instructions included) instead of the plain build.")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ] ~doc:"Execute the optimized bytecode on random inputs and print the dynamic opcode histogram; with $(b,--dump-bytecode), annotate each instruction with its hit count.")
  in
  let steps =
    Arg.(value & opt int 256 & info [ "profile-steps" ] ~docv:"N" ~doc:"Model iterations to execute in profile and $(b,--batch) modes.")
  in
  let batch =
    Arg.(value & opt (some int) None
         & info [ "batch" ] ~docv:"K"
             ~doc:"Compile the K-lane batched lockstep VM, print its structure-of-arrays register-plane layout, and run random inputs to report the branch pcs that split lane groups most (divergence hotspots).")
  in
  Cmd.v
    (Cmd.info "ir" ~doc:"Show bytecode optimizer statistics (and optionally disassembly) for a model.")
    Term.(const run $ model_arg $ dump $ instrumented $ profile $ steps $ batch)

let profile_cmd =
  let run model_path execs seed out_dir backend =
    let model = load_model model_path in
    if not (Sys.file_exists out_dir) then Unix.mkdir out_dir 0o755;
    let metrics_out = Some (Filename.concat out_dir "metrics.prom") in
    let trace_out = Some (Filename.concat out_dir "trace.json") in
    let coverage_csv = Some (Filename.concat out_dir "coverage.csv") in
    with_observability ~force:true ~metrics_out ~trace_out ~coverage_csv @@ fun series ->
    let config = { Fuzzer.default_config with Fuzzer.seed = Int64.of_int seed; backend } in
    let wall0 = Unix.gettimeofday () in
    let campaign =
      Cftcg.Pipeline.run_campaign ~config ?coverage_series:series model (Fuzzer.Exec_budget execs)
    in
    let wall = Unix.gettimeofday () -. wall0 in
    let stats = campaign.Cftcg.Pipeline.fuzz.Fuzzer.stats in
    Printf.printf "model %s: %d executions, %d/%d probes covered, %.0f execs/s\n"
      model.Graph.model_name stats.Fuzzer.executions stats.Fuzzer.probes_covered
      stats.Fuzzer.probes_total
      (float_of_int stats.Fuzzer.executions /. Float.max wall 1e-9);
    (* per-strategy effectiveness counters (paper Table 1) *)
    let module Metrics = Cftcg_obs.Metrics in
    Printf.printf "\nmutation strategy effectiveness:\n  %-24s %8s %8s %8s\n" "strategy" "picked"
      "new-cov" "kept";
    Array.iter
      (fun s ->
        let labels = [ ("strategy", Mutate.strategy_name s) ] in
        let v name = Metrics.value (Metrics.counter ~labels name) in
        Printf.printf "  %-24s %8d %8d %8d\n" (Mutate.strategy_name s)
          (v "cftcg_fuzz_strategy_picked_total")
          (v "cftcg_fuzz_strategy_new_coverage_total")
          (v "cftcg_fuzz_strategy_kept_total"))
      Mutate.all_strategies;
    (* VM execution profile, replaying the suite this campaign found *)
    let gen = campaign.Cftcg.Pipeline.gen in
    let layout = gen.Cftcg.Pipeline.layout in
    let data =
      match
        List.map
          (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data)
          campaign.Cftcg.Pipeline.fuzz.Fuzzer.test_suite
      with
      | [] ->
        let rng = Cftcg_util.Rng.create (Int64.of_int seed) in
        Bytes.concat Bytes.empty (List.init 64 (fun _ -> Layout.random_tuple_bytes layout rng))
      | suite -> Bytes.concat Bytes.empty suite
    in
    let rows = rows_of_bytes layout data ~max_rows:1024 in
    let vm = Cftcg_ir.Ir_vm.compile gen.Cftcg.Pipeline.program in
    let bp = Cftcg_ir.Ir_vm.profile vm rows in
    Printf.printf "\nvm profile over %d suite steps: %d dispatches\nopcode histogram:\n"
      (Array.length rows) bp.Ir_opt.bp_dispatches;
    print_opcode_histogram bp
  in
  let execs =
    Arg.(value & opt int 20_000 & info [ "execs" ] ~docv:"N" ~doc:"Execution budget for the profiled campaign.")
  in
  let out_dir =
    Arg.(value & opt string "profile" & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Directory for trace.json, metrics.prom and coverage.csv.")
  in
  let backend =
    Arg.(value & opt backend_conv Fuzzer.Vm & info [ "backend" ] ~docv:"BACKEND" ~doc:"Execution backend to profile: $(b,vm) or $(b,closures).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a short instrumented campaign and emit a Chrome trace, a Prometheus metrics dump, a Figure-7 coverage CSV, per-strategy effectiveness counters and a VM opcode profile.")
    Term.(const run $ model_arg $ execs $ seed_arg $ out_dir $ backend)

let corpus_cmd =
  let module Store = Cftcg_campaign.Corpus_store in
  let fsck_cmd =
    let run dir quiet =
      if not (Sys.file_exists dir && Sys.is_directory dir) then begin
        Printf.eprintf "no such corpus directory: %s\n" dir;
        exit 1
      end;
      let report =
        Store.fsck ~on_salvage:(fun msg -> if not quiet then Printf.printf "quarantined: %s\n" msg) dir
      in
      Printf.printf "entries: %d valid (%d shards)\nmanifest: %s\norphans: %d\nquarantined: %d\n"
        report.Store.fsck_entries report.Store.fsck_shards
        (match report.Store.fsck_manifest with
        | `Ok -> "ok"
        | `Missing -> "missing (campaign accounting lost; entries recovered on next open)"
        | `Quarantined -> "corrupt, quarantined (entries recovered on next open)")
        report.Store.fsck_orphans
        (List.length report.Store.fsck_quarantined);
      let c = report.Store.fsck_counts in
      (* per-kind breakdown in a stable machine-greppable form; CI
         jobs assert on these lines *)
      Printf.printf
        "  tmp_files: %d\n  bad_names: %d\n  empty_entries: %d\n  unreadable: %d\n  corrupt_manifests: %d\n  corrupt_shard_manifests: %d\n"
        c.Store.fc_tmp_files c.Store.fc_bad_names c.Store.fc_empty_entries c.Store.fc_unreadable
        c.Store.fc_corrupt_manifests c.Store.fc_corrupt_shard_manifests;
      if report.Store.fsck_quarantined <> [] then exit 1
    in
    let dir =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Corpus directory (as passed to fuzz --corpus).")
    in
    let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the summary.") in
    Cmd.v
      (Cmd.info "fsck"
         ~doc:"Validate and repair a corpus directory: quarantine half-written or undecodable files to *.corrupt-N (never deleting data) and report what is left. Exits 1 if anything was quarantined.")
      Term.(const run $ dir $ quiet)
  in
  Cmd.group (Cmd.info "corpus" ~doc:"Maintain on-disk corpus directories.") [ fsck_cmd ]

let models_cmd =
  let run export_dir =
    (match export_dir with
    | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      List.iter
        (fun (e : Models.entry) ->
          let path = Filename.concat dir (e.Models.name ^ ".slx.xml") in
          Slx.save_file (Lazy.force e.Models.model) path;
          Printf.printf "wrote %s\n" path)
        Models.all
    | None -> ());
    Printf.printf "%-8s  %-36s %8s %7s\n" "name" "functionality" "#branch" "#block";
    List.iter
      (fun (e : Models.entry) ->
        let m = Lazy.force e.Models.model in
        let prog = Codegen.lower ~mode:Codegen.Full m in
        Printf.printf "%-8s  %-36s %8d %7d\n" e.Models.name e.Models.functionality
          (Recorder.branch_total prog) (Graph.block_count m))
      Models.all
  in
  let export =
    Arg.(value & opt (some string) None & info [ "export" ] ~docv:"DIR" ~doc:"Also export every model as .slx.xml into DIR.")
  in
  Cmd.v (Cmd.info "models" ~doc:"List (and optionally export) the built-in benchmark models.")
    Term.(const run $ export)

(* ------------------------------------------------------------------ *)
(* service mode: a long-lived daemon multiplexing campaigns over one
   worker pool, plus the submit/status clients that talk to it *)

module Serve_wire = Cftcg_serve.Wire
module Worker_pool = Cftcg_campaign.Worker_pool

let parse_addr spec =
  match Serve_wire.addr_of_string spec with
  | Ok a -> a
  | Error msg ->
    Printf.eprintf "bad endpoint %S: %s\n" spec msg;
    exit 1

let socket_arg =
  Arg.(value & opt string "cftcg.sock"
       & info [ "s"; "socket" ] ~docv:"ENDPOINT"
           ~doc:"Daemon endpoint: a Unix-domain socket path (optionally $(b,unix:)PATH) or $(b,tcp:)HOST:PORT (localhost only is recommended; the protocol is unauthenticated).")

let serve_cmd =
  let run socket pool_size quantum inject_faults fault_seed log_out log_level =
    arm_faults inject_faults fault_seed;
    (* the daemon always collects: /metrics is its reason to exist,
       and the flight recorder feeds /debug/log and post-mortems *)
    Cftcg_obs.Metrics.set_collect true;
    setup_logging ~always:true log_out log_level;
    let addr = parse_addr socket in
    let capacity = if pool_size = 0 then Worker_pool.default_capacity () else pool_size in
    if capacity < 1 then begin
      Printf.eprintf "--pool must be >= 0 (got %d)\n" pool_size;
      exit 1
    end;
    let pool = Worker_pool.create capacity in
    let sched = Cftcg_serve.Scheduler.create ~quantum ~pool () in
    let stop = Atomic.make false in
    List.iter
      (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set stop true)))
      [ Sys.sigterm; Sys.sigint ];
    let resolve name =
      match Models.find name with
      | Some e -> Ok (Cftcg.Pipeline.generate (Lazy.force e.Models.model)).Cftcg.Pipeline.program
      | None -> (
        match Slx.load_file name with
        | m -> Ok (Cftcg.Pipeline.generate m).Cftcg.Pipeline.program
        | exception Slx.Load_error msg -> Error msg
        | exception Sys_error msg -> Error msg)
    in
    Printf.printf "cftcg serve: listening on %s (pool: %d worker slots, quantum: %d execs)\n%!"
      (Serve_wire.addr_to_string addr) capacity quantum;
    (try Cftcg_serve.Server.serve ~resolve ~sched ~stop:(fun () -> Atomic.get stop) addr with
    | Failure msg ->
      Printf.eprintf "cftcg serve: %s\n" msg;
      exit 1
    | e ->
      (* daemon abort: dump the flight-recorder ring before dying so
         the crash context survives the process *)
      let msg = Printexc.to_string e in
      (match Cftcg_obs.Flight.dump ~reason:("daemon abort: " ^ msg) () with
      | Some path -> Printf.eprintf "cftcg serve: aborted (%s); post-mortem: %s\n" msg path
      | None -> Printf.eprintf "cftcg serve: aborted (%s)\n" msg);
      exit 1);
    Printf.printf "cftcg serve: shut down cleanly\n%!"
  in
  let pool_size =
    Arg.(value & opt int 0
         & info [ "pool" ] ~docv:"N"
             ~doc:"Shared worker-pool capacity: how many fuzzing domains may run at once across every campaign. $(b,0) (default) resolves to the machine default, one slot per hardware thread minus the coordinator.")
  in
  let quantum =
    Arg.(value & opt int 1000
         & info [ "quantum" ] ~docv:"EXECS"
             ~doc:"Fair-share quantum: executions of deficit credited to every live campaign per scheduling round (multiplied by the campaign's weight).")
  in
  let inject_faults =
    Arg.(value & opt (some string) None
         & info [ "inject-faults" ] ~docv:"SPEC"
             ~doc:"Arm the deterministic fault-injection harness for the whole daemon (chaos testing), e.g. $(b,worker_raise\\@3).")
  in
  let fault_seed =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N" ~doc:"Seed for the $(b,--inject-faults) schedule.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the fuzzing-as-a-service daemon: accept campaign submissions over a Unix-domain socket (or localhost TCP), multiplex them over one shared worker pool with per-tenant budgets and deficit round-robin fair scheduling, and export live Prometheus metrics on /metrics.")
    Term.(const run $ socket_arg $ pool_size $ quantum $ inject_faults $ fault_seed $ log_out_arg
          $ log_level_arg)

let request_or_die addr ~meth ~path ?body () =
  match Serve_wire.http_request addr ~meth ~path ?body () with
  | status, body -> (status, body)
  | exception Unix.Unix_error (e, _, _) ->
    Printf.eprintf "cannot reach daemon at %s: %s\n" (Serve_wire.addr_to_string addr)
      (Unix.error_message e);
    exit 1

let submit_cmd =
  let run socket model tenant weight tenant_budget seed jobs execs epoch_execs corpus resume
      backend =
    let addr = parse_addr socket in
    let fields =
      [
        ("model", Serve_wire.Str model);
        ("tenant", Serve_wire.Str tenant);
        ("weight", Serve_wire.Num (float_of_int weight));
        ("seed", Serve_wire.Num (float_of_int seed));
        ("jobs", Serve_wire.Num (float_of_int jobs));
        ("total_execs", Serve_wire.Num (float_of_int execs));
        ("execs_per_epoch", Serve_wire.Num (float_of_int epoch_execs));
        ("resume", Serve_wire.Bool resume);
        ("backend", Serve_wire.Str (match backend with Fuzzer.Vm -> "vm" | Fuzzer.Closures -> "closures"));
      ]
      @ (match tenant_budget with
        | Some b -> [ ("tenant_budget", Serve_wire.Num (float_of_int b)) ]
        | None -> [])
      @ match corpus with
        | Some dir -> [ ("corpus_dir", Serve_wire.Str dir) ]
        | None -> []
    in
    let body = Serve_wire.to_string (Serve_wire.Obj fields) in
    match request_or_die addr ~meth:"POST" ~path:"/campaigns" ~body () with
    | 201, body ->
      let id = Serve_wire.get_string "id" (Serve_wire.of_string body) in
      Printf.printf "%s\n" id
    | status, body ->
      Printf.eprintf "submission rejected (HTTP %d): %s\n" status body;
      exit 1
  in
  let model =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL"
         ~doc:"Model: a built-in benchmark name or a .slx.xml path readable by the daemon.")
  in
  let tenant =
    Arg.(value & opt string "default" & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant to account this campaign against.")
  in
  let weight =
    Arg.(value & opt int 1 & info [ "weight" ] ~docv:"N" ~doc:"Fair-share weight relative to other campaigns.")
  in
  let tenant_budget =
    Arg.(value & opt (some int) None & info [ "tenant-budget" ] ~docv:"N"
         ~doc:"Set (or overwrite) the tenant's total execution budget across all its campaigns.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains per epoch; $(b,0) resolves to the daemon machine's default.")
  in
  let execs =
    Arg.(value & opt int 20_000 & info [ "execs" ] ~docv:"N" ~doc:"Total execution budget.")
  in
  let epoch_execs =
    Arg.(value & opt int 1000 & info [ "epoch-execs" ] ~docv:"N" ~doc:"Per-worker executions between corpus merges.")
  in
  let corpus =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc:"Persist the corpus to DIR on the daemon's filesystem (campaigns naming the same DIR share one sharded store).")
  in
  let resume = Arg.(value & flag & info [ "resume" ] ~doc:"Resume from the corpus manifest (requires --corpus).") in
  let backend =
    Arg.(value & opt backend_conv Fuzzer.Vm & info [ "backend" ] ~docv:"BACKEND" ~doc:"Execution backend: $(b,vm) or $(b,closures).")
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a campaign to a running $(b,cftcg serve) daemon; prints the campaign id.")
    Term.(const run $ socket_arg $ model $ tenant $ weight $ tenant_budget $ seed_arg $ jobs
          $ execs $ epoch_execs $ corpus $ resume $ backend)

let status_cmd =
  let run socket id events wait =
    let addr = parse_addr socket in
    match id with
    | None ->
      (* no id: list all campaigns *)
      let status, body = request_or_die addr ~meth:"GET" ~path:"/campaigns" () in
      print_string body;
      print_newline ();
      if status <> 200 then exit 1
    | Some id ->
      let path = Printf.sprintf "/campaigns/%s%s" id (if events then "/events" else "") in
      let rec poll () =
        let status, body = request_or_die addr ~meth:"GET" ~path () in
        if status <> 200 then begin
          Printf.eprintf "HTTP %d: %s\n" status body;
          exit 1
        end;
        let terminal =
          (not wait) || events
          ||
          match Serve_wire.get_string ~default:"" "status" (Serve_wire.of_string body) with
          | "done" | "failed" | "cancelled" -> true
          | _ -> false
        in
        if terminal then begin
          print_string body;
          print_newline ();
          if wait && not events then
            match Serve_wire.get_string ~default:"" "status" (Serve_wire.of_string body) with
            | "failed" -> exit 1
            | _ -> ()
        end
        else begin
          Unix.sleepf 0.2;
          poll ()
        end
      in
      poll ()
  in
  let id =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID"
         ~doc:"Campaign id (as printed by $(b,cftcg submit)); without it, list every campaign.")
  in
  let events =
    Arg.(value & flag & info [ "events" ] ~doc:"Fetch the campaign's buffered telemetry feed (JSON lines) instead of the status document.")
  in
  let wait =
    Arg.(value & flag & info [ "wait" ] ~doc:"Poll until the campaign reaches a terminal state; exit 1 if it failed.")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Query a running $(b,cftcg serve) daemon for campaign status or telemetry.")
    Term.(const run $ socket_arg $ id $ events $ wait)

let () =
  let info = Cmd.info "cftcg" ~version:"1.0.0" ~doc:"Fuzzing-based test case generation for Simulink-like models." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fuzz_cmd; emit_c_cmd; coverage_cmd; minimize_cmd; convert_cmd; simulate_cmd;
            ir_cmd; profile_cmd; corpus_cmd; models_cmd; serve_cmd; submit_cmd; status_cmd ]))
